//! The sequential deterministic scheduler.
//!
//! Two kinds of logical process share one virtual clock and one scheduler:
//!
//! * **Thread procs** — the original direct-style closures. Each owns an OS
//!   thread; only one runs at a time, handing over via condvar at every
//!   simulator call. Natural for code that blocks mid-request.
//! * **Steppable agents** — explicit state machines implementing [`Proc`].
//!   They own *no* thread: whichever OS thread currently drives the
//!   scheduler steps them inline (one message delivery or timer expiry per
//!   step) while holding the state lock. Thousands of agents cost a few
//!   hundred bytes each, which is what makes many-client serving scenarios
//!   representable at all.
//!
//! Either way the scheduler always runs the *ready* process with the
//! smallest virtual clock (ties broken by process id), so a mixed run is
//! exactly as deterministic as a thread-only one. A blocked process is ready
//! when matching mail is in its mailbox (at the mail's arrival time), its
//! receive deadline has passed, or — agents only — a timer is due.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::SimConfig;
use crate::ctx::SimCtx;
use crate::hostprof::{self, Scope as ProfScope};
use crate::message::Envelope;
use crate::metrics::MetricsSnapshot;
use crate::report::{ProcStats, SimReport};
use crate::reqtrace::{ReqRecorder, ReqToken};
use crate::time::SimTime;
use crate::timeseries::TsRecorder;

/// Identifier of a logical process (one process == one machine/NIC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Why a simulation failed.
#[derive(Clone, Debug)]
pub enum SimError {
    /// No process can make progress but non-daemon processes remain.
    Deadlock(String),
    /// A process panicked with a real (non-interrupt) panic.
    ProcPanic { name: String, message: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "simulation deadlock: {d}"),
            SimError::ProcPanic { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Panic payload used to unwind a process on shutdown or kill. Never leaks
/// out of the crate: process wrappers catch it.
pub(crate) struct Interrupt;

/// What a blocked process is waiting for.
#[derive(Clone)]
pub(crate) enum MatchSpec {
    /// Any message.
    Any,
    /// A reply whose correlation id is one of these.
    Replies(Vec<u64>),
}

impl MatchSpec {
    fn matches(&self, env: &Envelope) -> bool {
        match self {
            MatchSpec::Any => true,
            MatchSpec::Replies(ids) => env.is_reply && ids.contains(&env.corr),
        }
    }
}

enum Status {
    Runnable,
    Blocked {
        spec: MatchSpec,
        deadline: Option<SimTime>,
    },
    Finished,
}

/// An event-driven steppable process.
///
/// Unlike the closure passed to [`SimRuntime::spawn`], a `Proc` owns no OS
/// thread: the scheduler calls one of these hooks per scheduling turn, on
/// whatever thread currently drives the scheduler, while holding the global
/// state lock. The hooks therefore must not block — everything on
/// [`StepCtx`] is non-blocking — and should do bounded work per step.
/// Ordering between agents and thread procs still comes from the single
/// smallest-clock pick, so mixed runs stay bit-for-bit deterministic.
pub trait Proc: Send {
    /// Called once, at the agent's spawn clock, before any message or timer.
    fn on_start(&mut self, _ctx: &mut StepCtx<'_>) {}

    /// Called with each delivered message (requests and replies alike).
    fn on_message(&mut self, ctx: &mut StepCtx<'_>, env: Envelope);

    /// Called when a timer set via [`StepCtx::set_timer`] fires; `timer` is
    /// the token `set_timer` returned.
    fn on_timer(&mut self, _ctx: &mut StepCtx<'_>, _timer: u64) {}
}

/// Runtime state of a steppable agent (boxed to keep thread procs lean).
struct AgentState {
    /// Taken out while a step is in flight, so callbacks can borrow the
    /// scheduler state mutably through [`StepCtx`].
    agent: Option<Box<dyn Proc>>,
    started: bool,
    /// Pending timers ordered by (fire ns, token).
    timers: BTreeMap<(u64, u64), ()>,
    next_timer: u64,
    /// Same per-proc seeding discipline as `SimCtx`.
    rng: StdRng,
    /// Set by [`StepCtx::finish`]; the scheduler retires the agent after the
    /// current step returns.
    finish: bool,
}

enum Engine {
    /// Direct-style closure on its own OS thread.
    Thread,
    /// Steppable agent driven inline by the scheduler.
    Agent(Box<AgentState>),
}

struct ProcState {
    name: String,
    daemon: bool,
    killed: bool,
    clock: SimTime,
    status: Status,
    engine: Engine,
    /// Pending mail ordered by (arrival ns, global sequence).
    mailbox: BTreeMap<(u64, u64), Envelope>,
    stats: ProcStats,
}

impl ProcState {
    fn new(name: String, daemon: bool, clock: SimTime) -> ProcState {
        ProcState {
            stats: ProcStats::new(name.clone(), daemon),
            name,
            daemon,
            killed: false,
            clock,
            status: Status::Runnable,
            engine: Engine::Thread,
            mailbox: BTreeMap::new(),
        }
    }

    fn is_agent(&self) -> bool {
        matches!(self.engine, Engine::Agent(_))
    }

    /// Virtual time at which this process could next run, or `None` if it
    /// cannot run at all right now.
    fn ready_key(&self) -> Option<SimTime> {
        if matches!(self.status, Status::Finished) {
            return None;
        }
        if self.killed {
            // Schedulable so it gets a turn in which to unwind.
            return Some(self.clock);
        }
        if let Engine::Agent(ag) = &self.engine {
            // Agents consume any mail and additionally wake on timers; an
            // unstarted agent is ready for its `on_start` turn immediately.
            if !ag.started {
                return Some(self.clock);
            }
            let mail = self
                .mailbox
                .keys()
                .next()
                .map(|(arrival, _)| self.clock.max(SimTime(*arrival)));
            let timer = ag
                .timers
                .keys()
                .next()
                .map(|(fire, _)| self.clock.max(SimTime(*fire)));
            return match (mail, timer) {
                (Some(m), Some(t)) => Some(m.min(t)),
                (Some(m), None) => Some(m),
                (None, Some(t)) => Some(t),
                (None, None) => None,
            };
        }
        match &self.status {
            Status::Runnable => Some(self.clock),
            Status::Blocked { spec, deadline } => {
                let mail = self
                    .mailbox
                    .iter()
                    .find(|(_, env)| spec.matches(env))
                    .map(|((arrival, _), _)| self.clock.max(SimTime(*arrival)));
                match (mail, deadline) {
                    // Ready at whichever comes first: the matching mail's
                    // effective time or the deadline's effective time.
                    (Some(m), Some(d)) => Some(m.min(self.clock.max(*d))),
                    (Some(m), None) => Some(m),
                    (None, Some(d)) => Some(self.clock.max(*d)),
                    (None, None) => None,
                }
            }
            Status::Finished => None,
        }
    }
}

pub(crate) struct State {
    procs: Vec<ProcState>,
    nic_out_free: Vec<SimTime>,
    nic_in_free: Vec<SimTime>,
    running: Option<usize>,
    /// Unfinished non-daemon processes.
    live: usize,
    shutdown: bool,
    error: Option<SimError>,
    seq: u64,
    corr: u64,
    total_msgs: u64,
    total_bytes: u64,
    dropped_msgs: u64,
    handles: Vec<JoinHandle<()>>,
    tracing: bool,
    trace: Vec<crate::report::TraceEvent>,
    metrics: MetricsSnapshot,
    /// Interned trace labels in first-use order (only populated while
    /// tracing, so untraced runs pay nothing).
    labels: Vec<&'static str>,
    /// Per-process current op label applied to `Compute` events.
    op_labels: Vec<Option<crate::report::LabelId>>,
    /// Windowed-telemetry scraper (None unless enabled on the builder).
    ts: Option<TsRecorder>,
    /// Request-scoped trace recorder (None unless enabled on the builder).
    /// All its hooks run inside this lock and are non-yielding, so traced
    /// runs stay byte-identical to untraced same-seed runs.
    req: Option<ReqRecorder>,
}

impl State {
    /// Advance the windowed-telemetry scraper to virtual time `t`, emitting
    /// any window boundaries crossed since the last mutation. Called
    /// immediately *before* each registry/clock mutation so that "registry
    /// state at a boundary" is exactly the state left by the prior
    /// mutation. Not a yield point: no clock moves, no process wakes —
    /// scraped runs keep the exact timing of unscraped ones.
    fn ts_roll(&mut self, t: SimTime) {
        let Some(ts) = &mut self.ts else { return };
        if !ts.due(t) {
            return;
        }
        let _prof = hostprof::scope(ProfScope::ScrapeRoll);
        let procs: Vec<(u64, u64)> = self
            .procs
            .iter()
            .map(|p| (p.stats.busy.as_nanos(), p.mailbox.len() as u64))
            .collect();
        ts.roll(t, &self.metrics, &procs);
    }

    /// Intern a label, returning its stable id. First-use order, so the
    /// table is deterministic across same-seed runs. Linear scan: the label
    /// population is a couple dozen static strings.
    fn intern(&mut self, label: &'static str) -> crate::report::LabelId {
        if let Some(i) = self.labels.iter().position(|l| *l == label) {
            return crate::report::LabelId(i as u32);
        }
        self.labels.push(label);
        crate::report::LabelId((self.labels.len() - 1) as u32)
    }

    /// The send core shared by thread procs (`Shared::send_env`) and agent
    /// steps (`StepCtx`): NIC accounting, trace/reqtrace hooks, mailbox
    /// insert. Does not reschedule — the caller owns the handoff.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        cfg: &SimConfig,
        me: usize,
        dst: ProcId,
        tag: u32,
        corr: u64,
        is_reply: bool,
        payload: Box<dyn Any + Send>,
        bytes: u64,
        req: Option<ReqToken>,
    ) {
        let pre = self.procs[me].clock;
        self.ts_roll(pre);
        let net = &cfg.net;
        // Every send consumes a run-unique sequence number — dropped or not —
        // so traces carry explicit Send/Recv causal edges keyed by `seq`.
        self.seq += 1;
        let seq = self.seq;
        self.procs[me].clock += net.per_msg_overhead;
        let now = self.procs[me].clock;
        let arrival = if dst.0 == me {
            now + net.loopback
        } else {
            // Pipelined store-and-forward: receiving can begin once the first
            // bytes have crossed the link and the in-NIC is free.
            let wire = net.wire_time(bytes);
            let out_start = now.max(self.nic_out_free[me]);
            self.nic_out_free[me] = out_start + wire;
            let in_start = (out_start + net.latency).max(self.nic_in_free[dst.0]);
            let in_done = in_start + wire;
            self.nic_in_free[dst.0] = in_done;
            in_done
        };
        if self.tracing {
            self.trace.push(crate::report::TraceEvent::Send {
                at: now,
                src: ProcId(me),
                dst,
                tag,
                bytes,
                arrival,
                seq,
            });
        }
        if let (Some(tok), Some(rec)) = (req, &mut self.req) {
            rec.on_send(tok, now, arrival, is_reply);
        }
        self.procs[me].stats.msgs_sent += 1;
        self.procs[me].stats.bytes_sent += bytes;
        self.total_msgs += 1;
        self.total_bytes += bytes;
        if dst.0 != me {
            // Account virtual wire time as communication cost (loopback is
            // shared-memory, not the network).
            self.metrics
                .add("net.wire_ns", net.wire_time(bytes).as_nanos());
        } else {
            self.metrics.add("net.loopback_ns", net.loopback.as_nanos());
        }
        let dead = self.procs[dst.0].killed || matches!(self.procs[dst.0].status, Status::Finished);
        if dead {
            self.dropped_msgs += 1;
            self.procs[me].stats.msgs_dropped += 1;
            self.metrics.add(&format!("net.dropped.tag.{tag}"), 1);
            if self.tracing {
                self.trace.push(crate::report::TraceEvent::Drop {
                    at: now,
                    src: ProcId(me),
                    dst,
                    tag,
                    bytes,
                    seq,
                });
            }
        } else {
            let key = (arrival.as_nanos(), seq);
            self.procs[dst.0].mailbox.insert(
                key,
                Envelope {
                    src: ProcId(me),
                    dst,
                    tag,
                    corr,
                    is_reply,
                    payload,
                    bytes,
                    seq,
                    sent_at: now,
                    arrival,
                    req,
                },
            );
        }
    }
}

fn pick(st: &State) -> Option<usize> {
    let mut best: Option<(SimTime, usize)> = None;
    for (i, p) in st.procs.iter().enumerate() {
        if let Some(key) = p.ready_key() {
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

fn describe_blocked(st: &State) -> String {
    let mut parts = Vec::new();
    for p in &st.procs {
        if let Status::Blocked { .. } = p.status {
            parts.push(format!(
                "'{}'@{} (mailbox {})",
                p.name,
                p.clock,
                p.mailbox.len()
            ));
        }
    }
    if parts.is_empty() {
        "no blocked processes".to_string()
    } else {
        format!("blocked: {}", parts.join(", "))
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: SimConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    fn interrupt_check(&self, st: &State, me: usize) {
        if st.shutdown || st.procs[me].killed {
            panic::panic_any(Interrupt);
        }
    }

    /// Park until it is `me`'s turn (or shutdown/kill unwinds us).
    fn wait_for_turn(&self, st: &mut MutexGuard<'_, State>, me: usize) {
        // Parked wall time is the time *other* procs spend running; giving
        // it a dedicated hostprof scope keeps it out of every enclosing
        // scope's self time (the guard also records during Interrupt
        // unwinds, so killed procs account their final park).
        let _prof = hostprof::scope(ProfScope::SchedPark);
        loop {
            if st.shutdown || st.procs[me].killed {
                panic::panic_any(Interrupt);
            }
            if st.running == Some(me) {
                return;
            }
            self.cv.wait(st);
        }
    }

    /// After any operation that may have advanced `me`'s clock: hand off to
    /// the globally minimal-clock ready process (possibly still `me`).
    /// Ready *agents* ahead of the next thread proc are stepped inline right
    /// here — `me`'s OS thread is the scheduler while it holds the lock.
    fn reschedule(&self, st: &mut MutexGuard<'_, State>, me: usize) {
        {
            let _prof = hostprof::scope(ProfScope::SchedDispatch);
            loop {
                let next = match pick(st) {
                    Some(n) => n,
                    None => {
                        // `me` is running, hence ready — pick can only fail if
                        // we just blocked, which this path never does.
                        unreachable!("reschedule with no ready process")
                    }
                };
                if next == me {
                    return;
                }
                if st.procs[next].is_agent() {
                    self.step_agent(st, next);
                    // A step can finish the last non-daemon (shutdown) — the
                    // usual interrupt discipline applies to `me`.
                    self.interrupt_check(st, me);
                    continue;
                }
                st.running = Some(next);
                self.cv.notify_all();
                break;
            }
        }
        self.wait_for_turn(st, me);
    }

    fn fail(&self, st: &mut MutexGuard<'_, State>, err: SimError) {
        if st.error.is_none() {
            st.error = Some(err);
        }
        st.shutdown = true;
        st.running = None;
        self.cv.notify_all();
    }

    // ---- operations invoked through SimCtx ------------------------------

    pub(crate) fn now(&self, me: usize) -> SimTime {
        self.state.lock().procs[me].clock
    }

    pub(crate) fn advance(&self, me: usize, dt: SimTime) {
        let mut st = self.state.lock();
        self.interrupt_check(&st, me);
        let pre = st.procs[me].clock;
        st.ts_roll(pre);
        if st.tracing && dt > SimTime::ZERO {
            let at = st.procs[me].clock;
            let label = st.op_labels[me];
            st.trace.push(crate::report::TraceEvent::Compute {
                at,
                proc: ProcId(me),
                dt,
                label,
            });
        }
        let p = &mut st.procs[me];
        p.clock += dt;
        p.stats.busy += dt;
        self.reschedule(&mut st, me);
    }

    pub(crate) fn next_corr(&self) -> u64 {
        let mut st = self.state.lock();
        st.corr += 1;
        st.corr
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_env(
        &self,
        me: usize,
        dst: ProcId,
        tag: u32,
        corr: u64,
        is_reply: bool,
        payload: Box<dyn Any + Send>,
        bytes: u64,
        req: Option<ReqToken>,
    ) {
        let _prof = hostprof::scope(ProfScope::SchedSend);
        let mut st = self.state.lock();
        self.interrupt_check(&st, me);
        st.deliver(&self.cfg, me, dst, tag, corr, is_reply, payload, bytes, req);
        self.reschedule(&mut st, me);
    }

    pub(crate) fn block_recv(
        &self,
        me: usize,
        spec: MatchSpec,
        deadline: Option<SimTime>,
    ) -> Option<Envelope> {
        let _prof = hostprof::scope(ProfScope::SchedRecv);
        let mut st = self.state.lock();
        loop {
            self.interrupt_check(&st, me);
            let found = st.procs[me]
                .mailbox
                .iter()
                .find(|(_, env)| spec.matches(env))
                .map(|(k, _)| *k);
            if let Some(key) = found {
                let eff = st.procs[me].clock.max(st.procs[me].mailbox[&key].arrival);
                st.ts_roll(eff);
                let env = st.procs[me].mailbox.remove(&key).expect("mail vanished");
                let p = &mut st.procs[me];
                p.clock = p.clock.max(env.arrival);
                p.status = Status::Runnable;
                p.stats.msgs_recv += 1;
                p.stats.bytes_recv += env.bytes;
                if st.tracing {
                    let at = st.procs[me].clock;
                    st.trace.push(crate::report::TraceEvent::Recv {
                        at,
                        proc: ProcId(me),
                        src: env.src,
                        tag: env.tag,
                        seq: env.seq,
                    });
                }
                if let Some(tok) = env.req {
                    let clock = st.procs[me].clock;
                    if let Some(rec) = &mut st.req {
                        rec.on_dequeue(tok, clock, env.is_reply);
                    }
                }
                self.reschedule(&mut st, me);
                return Some(env);
            }
            if let Some(d) = deadline {
                if st.procs[me].clock >= d {
                    st.procs[me].status = Status::Runnable;
                    self.reschedule(&mut st, me);
                    return None;
                }
            }
            st.procs[me].status = Status::Blocked {
                spec: spec.clone(),
                deadline,
            };
            match pick(&st) {
                Some(next) if next == me => {
                    // Ready by deadline only (matching mail would have been
                    // consumed above).
                    let d = deadline.expect("self-ready without mail or deadline");
                    let eff = st.procs[me].clock.max(d);
                    st.ts_roll(eff);
                    let p = &mut st.procs[me];
                    p.clock = p.clock.max(d);
                    p.status = Status::Runnable;
                    self.reschedule(&mut st, me);
                    return None;
                }
                Some(next) if st.procs[next].is_agent() => {
                    // Step the agent on this thread and re-check the mailbox:
                    // the step may have mailed `me`.
                    self.step_agent(&mut st, next);
                }
                Some(next) => {
                    st.running = Some(next);
                    self.cv.notify_all();
                    self.wait_for_turn(&mut st, me);
                    // Loop re-checks the mailbox.
                }
                None => {
                    if st.live == 0 {
                        // Only daemons remain and all are blocked: the
                        // simulation is simply over.
                        st.shutdown = true;
                        st.running = None;
                        self.cv.notify_all();
                    } else {
                        let live = st.live;
                        let desc = format!("{} live non-daemons; {}", live, describe_blocked(&st));
                        self.fail(&mut st, SimError::Deadlock(desc));
                    }
                    panic::panic_any(Interrupt);
                }
            }
        }
    }

    // ---- flight-recorder operations --------------------------------------
    //
    // These are deliberately NOT yield points: they take the lock, update
    // the registry (or push a trace event), and return. No clock moves, no
    // sequence/correlation number is consumed, no other process is woken —
    // so an instrumented run is timing-identical to an uninstrumented one.

    /// The spawn-time name of a process — for diagnostics (panic messages,
    /// logs). Not a yield point.
    pub(crate) fn proc_name(&self, me: usize) -> String {
        self.state.lock().procs[me].name.clone()
    }

    pub(crate) fn metric_add(&self, me: usize, name: &str, delta: u64) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let t = st.procs[me].clock;
        st.ts_roll(t);
        st.metrics.add(name, delta);
    }

    pub(crate) fn metric_gauge_set(&self, me: usize, name: &str, value: i64) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let t = st.procs[me].clock;
        st.ts_roll(t);
        st.metrics.gauge_set(name, value);
    }

    pub(crate) fn metric_observe(&self, me: usize, name: &str, dt: SimTime) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let t = st.procs[me].clock;
        st.ts_roll(t);
        st.metrics.observe(name, dt);
    }

    /// Mint request-trace tokens for one fabric op (empty when request
    /// tracing is off). Ids come from the recorder's own counter — no
    /// sequence or correlation number is consumed. Not a yield point.
    pub(crate) fn req_begin_batch(&self, me: usize, op: &str, n: usize) -> Vec<ReqToken> {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let now = st.procs[me].clock;
        match &mut st.req {
            Some(rec) => rec.begin_batch(me, op, n, now),
            None => Vec::new(),
        }
    }

    /// Attribute `dt` of post-gather client work to `me`'s open request
    /// batch and seal it. Not a yield point.
    pub(crate) fn req_cache_fill(&self, me: usize, dt: SimTime) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        if let Some(rec) = &mut st.req {
            rec.cache_fill(me, dt);
        }
    }

    pub(crate) fn trace_mark(&self, me: usize, label: &'static str, payload: Option<u64>) {
        let mut st = self.state.lock();
        if st.tracing {
            let label = st.intern(label);
            let at = st.procs[me].clock;
            st.trace.push(crate::report::TraceEvent::Mark {
                at,
                proc: ProcId(me),
                label,
                payload,
            });
        }
    }

    /// Set (or clear) the op label attached to `me`'s subsequent `Compute`
    /// events. Not a yield point; no-op when tracing is off.
    pub(crate) fn set_op_label(&self, me: usize, label: Option<&'static str>) {
        let mut st = self.state.lock();
        if st.tracing {
            let id = label.map(|l| st.intern(l));
            st.op_labels[me] = id;
        }
    }

    pub(crate) fn kill(&self, me: usize, target: ProcId) {
        assert_ne!(me, target.0, "a process cannot kill itself; just return");
        let mut st = self.state.lock();
        self.interrupt_check(&st, me);
        if !matches!(st.procs[target.0].status, Status::Finished) {
            st.procs[target.0].killed = true;
        }
        // The victim gets reaped when the scheduler next selects it; parked
        // victims wake on this notify, see `killed`, and unwind.
        self.cv.notify_all();
        self.reschedule(&mut st, me);
    }

    pub(crate) fn is_alive(&self, target: ProcId) -> bool {
        let st = self.state.lock();
        let p = &st.procs[target.0];
        !p.killed && !matches!(p.status, Status::Finished)
    }

    // ---- steppable agents -------------------------------------------------

    /// Run one scheduling turn of agent `idx`: deliver its earliest event
    /// (start, mail, or timer — whichever has the smallest effective time,
    /// mail winning ties) into the corresponding [`Proc`] hook. Runs on the
    /// calling thread while the lock is held; the callback sees the
    /// scheduler state through [`StepCtx`] and cannot block.
    fn step_agent(&self, st: &mut MutexGuard<'_, State>, idx: usize) {
        let _prof = hostprof::scope(ProfScope::SchedStep);
        if st.procs[idx].killed {
            // Kills retire an agent at its next turn, mirroring the unwind
            // a thread proc performs.
            self.finish_agent(st, idx);
            return;
        }
        enum Ev {
            Start,
            Mail,
            Timer(u64),
        }
        let ev = {
            let p = &st.procs[idx];
            let Engine::Agent(ag) = &p.engine else {
                unreachable!("step_agent on a thread proc")
            };
            if !ag.started {
                Ev::Start
            } else {
                let mail = p
                    .mailbox
                    .keys()
                    .next()
                    .map(|(arrival, _)| p.clock.max(SimTime(*arrival)));
                let timer = ag.timers.keys().next().copied();
                match (mail, timer) {
                    (Some(m), Some((fire, tok))) => {
                        if m <= p.clock.max(SimTime(fire)) {
                            Ev::Mail
                        } else {
                            Ev::Timer(tok)
                        }
                    }
                    (Some(_), None) => Ev::Mail,
                    (None, Some((_, tok))) => Ev::Timer(tok),
                    (None, None) => unreachable!("agent picked with no pending event"),
                }
            }
        };
        // Event bookkeeping mirrors the thread paths exactly: roll the
        // telemetry window at the effective time, advance the clock, record
        // stats/trace/reqtrace.
        let mut env = None;
        match &ev {
            Ev::Start => {}
            Ev::Mail => {
                let key = *st.procs[idx].mailbox.keys().next().expect("mail vanished");
                let eff = st.procs[idx].clock.max(SimTime(key.0));
                st.ts_roll(eff);
                let e = st.procs[idx].mailbox.remove(&key).expect("mail vanished");
                let p = &mut st.procs[idx];
                p.clock = p.clock.max(e.arrival);
                p.stats.msgs_recv += 1;
                p.stats.bytes_recv += e.bytes;
                if st.tracing {
                    let at = st.procs[idx].clock;
                    st.trace.push(crate::report::TraceEvent::Recv {
                        at,
                        proc: ProcId(idx),
                        src: e.src,
                        tag: e.tag,
                        seq: e.seq,
                    });
                }
                if let Some(tok) = e.req {
                    let clock = st.procs[idx].clock;
                    if let Some(rec) = &mut st.req {
                        rec.on_dequeue(tok, clock, e.is_reply);
                    }
                }
                env = Some(e);
            }
            Ev::Timer(tok) => {
                let Engine::Agent(ag) = &mut st.procs[idx].engine else {
                    unreachable!()
                };
                let (fire, _) = *ag.timers.keys().next().expect("timer vanished");
                ag.timers.remove(&(fire, *tok));
                let eff = st.procs[idx].clock.max(SimTime(fire));
                st.ts_roll(eff);
                st.procs[idx].clock = eff;
            }
        }
        let mut agent = {
            let Engine::Agent(ag) = &mut st.procs[idx].engine else {
                unreachable!()
            };
            if let Ev::Start = ev {
                ag.started = true;
            }
            ag.agent.take().expect("agent stepped reentrantly")
        };
        {
            let mut ctx = StepCtx {
                cfg: &self.cfg,
                st,
                me: idx,
            };
            match ev {
                Ev::Start => agent.on_start(&mut ctx),
                Ev::Mail => agent.on_message(&mut ctx, env.expect("mail event without mail")),
                Ev::Timer(tok) => agent.on_timer(&mut ctx, tok),
            }
        }
        let finish = {
            let Engine::Agent(ag) = &mut st.procs[idx].engine else {
                unreachable!()
            };
            ag.agent = Some(agent);
            ag.finish || st.procs[idx].killed
        };
        if finish {
            self.finish_agent(st, idx);
        } else {
            // Parked between events; `ready_key` watches mail and timers.
            st.procs[idx].status = Status::Blocked {
                spec: MatchSpec::Any,
                deadline: None,
            };
        }
    }

    /// Retire an agent: the no-thread analogue of `on_proc_exit`.
    fn finish_agent(&self, st: &mut MutexGuard<'_, State>, idx: usize) {
        let p = &mut st.procs[idx];
        let daemon = p.daemon;
        let already_finished = matches!(p.status, Status::Finished);
        p.status = Status::Finished;
        p.stats.finished_at = p.clock;
        if let Engine::Agent(ag) = &mut p.engine {
            // Drop user state and pending timers now; the slot itself stays
            // (ids are stable).
            ag.agent = None;
            ag.timers.clear();
        }
        if st.tracing && !already_finished {
            let at = st.procs[idx].clock;
            st.trace.push(crate::report::TraceEvent::Finish {
                at,
                proc: ProcId(idx),
            });
        }
        if !daemon && !already_finished {
            st.live -= 1;
        }
        if st.live == 0 {
            st.shutdown = true;
            st.running = None;
            self.cv.notify_all();
        }
    }

    pub(crate) fn spawn_agent_impl(
        &self,
        name: &str,
        daemon: bool,
        start_clock: SimTime,
        agent: Box<dyn Proc>,
    ) -> ProcId {
        let mut st = self.state.lock();
        let id = st.procs.len();
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id as u64 + 1);
        let mut p = ProcState::new(name.to_string(), daemon, start_clock);
        p.engine = Engine::Agent(Box::new(AgentState {
            agent: Some(agent),
            started: false,
            timers: BTreeMap::new(),
            next_timer: 0,
            rng: StdRng::seed_from_u64(seed),
            finish: false,
        }));
        st.procs.push(p);
        st.nic_out_free.push(SimTime::ZERO);
        st.nic_in_free.push(SimTime::ZERO);
        st.op_labels.push(None);
        if !daemon {
            st.live += 1;
        }
        ProcId(id)
    }

    pub(crate) fn spawn_impl(
        self: &Arc<Self>,
        name: &str,
        daemon: bool,
        start_clock: SimTime,
        f: Box<dyn FnOnce(&mut SimCtx) + Send>,
    ) -> ProcId {
        let mut st = self.state.lock();
        let id = st.procs.len();
        st.procs
            .push(ProcState::new(name.to_string(), daemon, start_clock));
        st.nic_out_free.push(SimTime::ZERO);
        st.nic_in_free.push(SimTime::ZERO);
        st.op_labels.push(None);
        if !daemon {
            st.live += 1;
        }
        let shared = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || proc_main(shared, id, f))
            .expect("failed to spawn simulation thread");
        st.handles.push(handle);
        ProcId(id)
    }

    fn on_proc_exit(&self, me: usize, result: Result<(), Box<dyn Any + Send>>) {
        let mut st = self.state.lock();
        if let Err(payload) = result {
            if !payload.is::<Interrupt>() && st.error.is_none() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let name = st.procs[me].name.clone();
                st.error = Some(SimError::ProcPanic { name, message });
                st.shutdown = true;
            }
        }
        let daemon = st.procs[me].daemon;
        let already_finished = matches!(st.procs[me].status, Status::Finished);
        st.procs[me].status = Status::Finished;
        st.procs[me].stats.finished_at = st.procs[me].clock;
        if st.tracing && !already_finished {
            let at = st.procs[me].clock;
            st.trace.push(crate::report::TraceEvent::Finish {
                at,
                proc: ProcId(me),
            });
        }
        if !daemon && !already_finished {
            st.live -= 1;
        }
        if st.live == 0 {
            st.shutdown = true;
        }
        if st.shutdown {
            st.running = None;
            self.cv.notify_all();
            return;
        }
        if st.running == Some(me) {
            loop {
                if st.shutdown {
                    st.running = None;
                    self.cv.notify_all();
                    break;
                }
                match pick(&st) {
                    Some(next) if st.procs[next].is_agent() => {
                        // The exiting thread keeps driving the schedule while
                        // agents are next in line.
                        self.step_agent(&mut st, next);
                    }
                    Some(next) => {
                        st.running = Some(next);
                        self.cv.notify_all();
                        break;
                    }
                    None => {
                        let desc = describe_blocked(&st);
                        self.fail(&mut st, SimError::Deadlock(desc));
                        break;
                    }
                }
            }
        }
    }
}

/// The handle a [`Proc`] hook sees during a step.
///
/// Everything here is **non-blocking**: sends enqueue mail, timers arm, the
/// clock only moves forward via [`StepCtx::advance`]. There is deliberately
/// no `recv`/`call` — an agent that needs a reply sends the request with
/// [`StepCtx::send_request`] and matches the reply's correlation id in
/// `on_message`. A whole step is atomic with respect to other processes:
/// no one else runs between two statements of a hook.
pub struct StepCtx<'a> {
    cfg: &'a SimConfig,
    st: &'a mut State,
    me: usize,
}

impl StepCtx<'_> {
    /// This agent's id.
    pub fn id(&self) -> ProcId {
        ProcId(self.me)
    }

    /// This agent's spawn-time name, for diagnostics.
    pub fn proc_name(&self) -> String {
        self.st.procs[self.me].name.clone()
    }

    /// Current virtual time of this agent.
    pub fn now(&self) -> SimTime {
        self.st.procs[self.me].clock
    }

    /// The simulation configuration (network and compute cost models).
    pub fn config(&self) -> &SimConfig {
        self.cfg
    }

    /// Deterministic per-agent random number generator (same seeding
    /// discipline as [`SimCtx::rng`](crate::SimCtx::rng)).
    pub fn rng(&mut self) -> &mut StdRng {
        let Engine::Agent(ag) = &mut self.st.procs[self.me].engine else {
            unreachable!("StepCtx on a thread proc")
        };
        &mut ag.rng
    }

    /// Advance this agent's clock by `dt` of busy (compute) time. Unlike
    /// [`SimCtx::advance`](crate::SimCtx::advance) this does not yield — the
    /// step stays atomic — so hooks should charge bounded work per step.
    pub fn advance(&mut self, dt: SimTime) {
        let pre = self.st.procs[self.me].clock;
        self.st.ts_roll(pre);
        if self.st.tracing && dt > SimTime::ZERO {
            let label = self.st.op_labels[self.me];
            self.st.trace.push(crate::report::TraceEvent::Compute {
                at: pre,
                proc: ProcId(self.me),
                dt,
                label,
            });
        }
        let p = &mut self.st.procs[self.me];
        p.clock += dt;
        p.stats.busy += dt;
    }

    /// Charge `flops` floating-point operations of compute time.
    pub fn charge_flops(&mut self, flops: u64) {
        let dt = self.cfg.compute.flops_time(flops);
        self.advance(dt);
    }

    /// Charge a memory-bound scan over `bytes` bytes.
    pub fn charge_mem(&mut self, bytes: u64) {
        let dt = self.cfg.compute.mem_time(bytes);
        self.advance(dt);
    }

    #[allow(clippy::too_many_arguments)]
    fn send_inner(
        &mut self,
        dst: ProcId,
        tag: u32,
        corr: u64,
        is_reply: bool,
        payload: Box<dyn Any + Send>,
        bytes: u64,
        req: Option<ReqToken>,
    ) {
        let _prof = hostprof::scope(ProfScope::SchedSend);
        self.st.deliver(
            self.cfg, self.me, dst, tag, corr, is_reply, payload, bytes, req,
        );
    }

    /// Send a one-way message of declared wire size `bytes`.
    pub fn send<P: Any + Send>(&mut self, dst: ProcId, tag: u32, payload: P, bytes: u64) {
        self.send_inner(dst, tag, 0, false, Box::new(payload), bytes, None);
    }

    /// Send a request and return its correlation id; the reply arrives in a
    /// later `on_message` with [`Envelope::corr`] equal to the returned id.
    pub fn send_request<P: Any + Send>(
        &mut self,
        dst: ProcId,
        tag: u32,
        payload: P,
        bytes: u64,
    ) -> u64 {
        self.send_request_traced(dst, tag, payload, bytes, None)
    }

    /// [`StepCtx::send_request`] with an optional request-trace token (mint
    /// with [`StepCtx::req_begin_batch`]; the reply carries it back).
    pub fn send_request_traced<P: Any + Send>(
        &mut self,
        dst: ProcId,
        tag: u32,
        payload: P,
        bytes: u64,
        req: Option<ReqToken>,
    ) -> u64 {
        self.st.corr += 1;
        let corr = self.st.corr;
        self.send_inner(dst, tag, corr, false, Box::new(payload), bytes, req);
        corr
    }

    /// Reply to a request received via `on_message`.
    pub fn reply<P: Any + Send>(&mut self, request: &Envelope, payload: P, bytes: u64) {
        self.reply_boxed(request, Box::new(payload), bytes);
    }

    /// Reply with an already type-erased payload.
    pub fn reply_boxed(&mut self, request: &Envelope, payload: Box<dyn Any + Send>, bytes: u64) {
        assert_ne!(request.corr, 0, "reply target was not sent with call()");
        self.send_inner(
            request.src,
            request.tag,
            request.corr,
            true,
            payload,
            bytes,
            request.req,
        );
    }

    /// Arm a timer `dt` from now; `on_timer` fires with the returned token.
    pub fn set_timer(&mut self, dt: SimTime) -> u64 {
        let fire = (self.st.procs[self.me].clock + dt).as_nanos();
        let Engine::Agent(ag) = &mut self.st.procs[self.me].engine else {
            unreachable!("StepCtx on a thread proc")
        };
        let tok = ag.next_timer;
        ag.next_timer += 1;
        ag.timers.insert((fire, tok), ());
        tok
    }

    /// Retire this agent after the current hook returns. Non-daemon agents
    /// must eventually call this (or be killed) for the simulation to end.
    pub fn finish(&mut self) {
        let Engine::Agent(ag) = &mut self.st.procs[self.me].engine else {
            unreachable!("StepCtx on a thread proc")
        };
        ag.finish = true;
    }

    /// Whether `target` has neither finished nor been killed.
    pub fn is_alive(&self, target: ProcId) -> bool {
        let p = &self.st.procs[target.0];
        !p.killed && !matches!(p.status, Status::Finished)
    }

    // ---- flight recorder (same non-yielding discipline as SimCtx) --------

    /// Increment a named counter in the run's metrics registry.
    pub fn metric_add(&mut self, name: &str, delta: u64) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let t = self.st.procs[self.me].clock;
        self.st.ts_roll(t);
        self.st.metrics.add(name, delta);
    }

    /// Set a named gauge to an absolute value.
    pub fn metric_gauge_set(&mut self, name: &str, value: i64) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let t = self.st.procs[self.me].clock;
        self.st.ts_roll(t);
        self.st.metrics.gauge_set(name, value);
    }

    /// Record a virtual-time duration into a named histogram.
    pub fn metric_observe(&mut self, name: &str, dt: SimTime) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let t = self.st.procs[self.me].clock;
        self.st.ts_roll(t);
        self.st.metrics.observe(name, dt);
    }

    /// Mint request-trace tokens for one op issued by this agent (empty when
    /// request tracing is off). See
    /// [`SimCtx::req_begin_batch`](crate::SimCtx::req_begin_batch).
    pub fn req_begin_batch(&mut self, op: &str, n: usize) -> Vec<ReqToken> {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let now = self.st.procs[self.me].clock;
        match &mut self.st.req {
            Some(rec) => rec.begin_batch(self.me, op, n, now),
            None => Vec::new(),
        }
    }

    /// Timeline mark at this agent's clock (no-op unless tracing).
    pub fn trace_mark(&mut self, label: &'static str) {
        self.trace_mark_impl(label, None);
    }

    /// [`StepCtx::trace_mark`] with a `u64` payload.
    pub fn trace_mark_with(&mut self, label: &'static str, payload: u64) {
        self.trace_mark_impl(label, Some(payload));
    }

    fn trace_mark_impl(&mut self, label: &'static str, payload: Option<u64>) {
        if self.st.tracing {
            let label = self.st.intern(label);
            let at = self.st.procs[self.me].clock;
            self.st.trace.push(crate::report::TraceEvent::Mark {
                at,
                proc: ProcId(self.me),
                label,
                payload,
            });
        }
    }

    /// Label subsequent compute charges with an op name (trace-only).
    pub fn op_label(&mut self, label: &'static str) {
        if self.st.tracing {
            let id = self.st.intern(label);
            self.st.op_labels[self.me] = Some(id);
        }
    }

    /// Clear the label set by [`StepCtx::op_label`].
    pub fn op_label_clear(&mut self) {
        if self.st.tracing {
            self.st.op_labels[self.me] = None;
        }
    }
}

/// Suppress the default panic-hook noise for our internal `Interrupt`
/// unwinds while keeping real panics loud.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Interrupt>() {
                return;
            }
            default(info);
        }));
    });
}

fn proc_main(shared: Arc<Shared>, me: usize, f: Box<dyn FnOnce(&mut SimCtx) + Send>) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        {
            let mut st = shared.state.lock();
            shared.wait_for_turn(&mut st, me);
        }
        let mut ctx = SimCtx::new(Arc::clone(&shared), ProcId(me));
        f(&mut ctx);
    }));
    shared.on_proc_exit(me, result);
}

/// A write-once slot used to carry a process's return value out of the
/// simulation.
pub struct OutputSlot<T> {
    inner: Arc<Mutex<Option<T>>>,
}

impl<T> Clone for OutputSlot<T> {
    fn clone(&self) -> Self {
        OutputSlot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> OutputSlot<T> {
    fn new() -> Self {
        OutputSlot {
            inner: Arc::new(Mutex::new(None)),
        }
    }

    fn put(&self, value: T) {
        *self.inner.lock() = Some(value);
    }

    /// Take the value. Panics if the producing process never finished.
    pub fn take(&self) -> T {
        self.inner
            .lock()
            .take()
            .expect("OutputSlot: producing process did not complete")
    }

    /// Non-panicking variant of [`OutputSlot::take`].
    pub fn try_take(&self) -> Option<T> {
        self.inner.lock().take()
    }
}

/// Builder for a [`SimRuntime`].
#[derive(Default)]
pub struct SimBuilder {
    cfg: SimConfig,
    tracing: bool,
    ts: Option<(SimTime, usize)>,
    reqtrace: bool,
}

impl SimBuilder {
    pub fn new() -> SimBuilder {
        SimBuilder::default()
    }

    pub fn seed(mut self, seed: u64) -> SimBuilder {
        self.cfg.seed = seed;
        self
    }

    pub fn network(mut self, net: crate::config::NetConfig) -> SimBuilder {
        self.cfg.net = net;
        self
    }

    pub fn compute(mut self, compute: crate::config::ComputeConfig) -> SimBuilder {
        self.cfg.compute = compute;
        self
    }

    pub fn config(mut self, cfg: SimConfig) -> SimBuilder {
        self.cfg = cfg;
        self
    }

    /// Record an event trace (sends, receives, compute, finishes) into the
    /// final report. Costs memory proportional to event count; intended for
    /// debugging and visualization, not for the large benches.
    pub fn trace(mut self, on: bool) -> SimBuilder {
        self.tracing = on;
        self
    }

    /// Scrape the metrics registry into windowed time-series every `window`
    /// of virtual time (ring capacity [`crate::timeseries::DEFAULT_CAPACITY`]
    /// windows). Scraping is non-yielding: a scraped run is byte-identical
    /// to an unscraped same-seed run.
    pub fn timeseries(self, window: SimTime) -> SimBuilder {
        self.timeseries_capacity(window, crate::timeseries::DEFAULT_CAPACITY)
    }

    /// [`SimBuilder::timeseries`] with an explicit ring capacity: once more
    /// than `capacity` windows complete, the oldest are evicted (counted in
    /// [`crate::timeseries::TimeSeries::dropped_windows`]).
    pub fn timeseries_capacity(mut self, window: SimTime, capacity: usize) -> SimBuilder {
        self.ts = Some((window, capacity));
        self
    }

    /// Record request-scoped traces: per-request stage latencies
    /// (issue/network/queue/service/reply/cache-fill) and deterministic
    /// slowest-request exemplars per op, exported on
    /// [`SimReport::reqs`](crate::SimReport::reqs). Recording is
    /// non-yielding: a traced run is byte-identical to an untraced
    /// same-seed run.
    pub fn reqtrace(mut self, on: bool) -> SimBuilder {
        self.reqtrace = on;
        self
    }

    pub fn build(self) -> SimRuntime {
        install_quiet_hook();
        SimRuntime {
            shared: Arc::new(Shared {
                cfg: self.cfg,
                state: Mutex::new(State {
                    procs: Vec::new(),
                    nic_out_free: Vec::new(),
                    nic_in_free: Vec::new(),
                    running: None,
                    live: 0,
                    shutdown: false,
                    error: None,
                    seq: 0,
                    corr: 0,
                    total_msgs: 0,
                    total_bytes: 0,
                    dropped_msgs: 0,
                    handles: Vec::new(),
                    tracing: self.tracing,
                    trace: Vec::new(),
                    metrics: MetricsSnapshot::default(),
                    labels: Vec::new(),
                    op_labels: Vec::new(),
                    ts: self.ts.map(|(w, c)| TsRecorder::new(w, c)),
                    req: self.reqtrace.then(ReqRecorder::new),
                }),
                cv: Condvar::new(),
            }),
        }
    }
}

/// A configured simulation: spawn processes, then [`SimRuntime::run`].
pub struct SimRuntime {
    shared: Arc<Shared>,
}

impl SimRuntime {
    /// Spawn a non-daemon process. The simulation ends when all non-daemon
    /// processes finish.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut SimCtx) + Send + 'static,
    {
        self.shared
            .spawn_impl(name, false, SimTime::ZERO, Box::new(f))
    }

    /// Spawn a daemon process (e.g. a server loop). Daemons are interrupted
    /// when every non-daemon process has finished.
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut SimCtx) + Send + 'static,
    {
        self.shared
            .spawn_impl(name, true, SimTime::ZERO, Box::new(f))
    }

    /// Spawn a non-daemon steppable agent (no OS thread — stepped inline by
    /// the scheduler on message delivery and timer expiry). The simulation
    /// ends when all non-daemon processes finish; a non-daemon agent finishes
    /// by calling [`StepCtx::finish`].
    pub fn spawn_agent<A: Proc + 'static>(&mut self, name: &str, agent: A) -> ProcId {
        self.shared
            .spawn_agent_impl(name, false, SimTime::ZERO, Box::new(agent))
    }

    /// Spawn a daemon steppable agent (e.g. a server). Daemon agents are
    /// retired when every non-daemon process has finished.
    pub fn spawn_agent_daemon<A: Proc + 'static>(&mut self, name: &str, agent: A) -> ProcId {
        self.shared
            .spawn_agent_impl(name, true, SimTime::ZERO, Box::new(agent))
    }

    /// Spawn a non-daemon process whose return value is captured in an
    /// [`OutputSlot`], readable after [`SimRuntime::run`].
    pub fn spawn_collect<T, F>(&mut self, name: &str, f: F) -> OutputSlot<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut SimCtx) -> T + Send + 'static,
    {
        let slot = OutputSlot::new();
        let out = slot.clone();
        self.spawn(name, move |ctx| {
            let v = f(ctx);
            out.put(v);
        });
        slot
    }

    /// Run the simulation to completion.
    pub fn run(self) -> Result<SimReport, SimError> {
        let wall_start = Instant::now();
        let profiling = hostprof::enabled();
        if profiling {
            // Drop leftovers from earlier runs (e.g. a previous run's
            // post-run export scopes) so this report is self-contained.
            hostprof::reset();
        }
        {
            let mut st = self.shared.state.lock();
            // The run() thread drives the schedule until a thread proc takes
            // over (or the whole sim is agents and completes right here).
            loop {
                if st.shutdown {
                    break;
                }
                match pick(&st) {
                    Some(next) if st.procs[next].is_agent() => {
                        self.shared.step_agent(&mut st, next);
                    }
                    Some(next) => {
                        st.running = Some(next);
                        self.shared.cv.notify_all();
                        break;
                    }
                    None => {
                        if st.live > 0 {
                            let desc = describe_blocked(&st);
                            st.error = Some(SimError::Deadlock(desc));
                        }
                        st.shutdown = true;
                        self.shared.cv.notify_all();
                        break;
                    }
                }
            }
            while !st.shutdown {
                self.shared.cv.wait(&mut st);
            }
            st.running = None;
            self.shared.cv.notify_all();
        }
        // All threads unwind on shutdown; join them before reading stats.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut st = self.shared.state.lock();
                std::mem::take(&mut st.handles)
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let mut st = self.shared.state.lock();
        if let Some(err) = st.error.clone() {
            return Err(err);
        }
        // Daemon agents have no thread to unwind at shutdown; stamp their
        // end the way `on_proc_exit` does for thread daemons.
        let mut finish_events = Vec::new();
        for (i, p) in st.procs.iter_mut().enumerate() {
            if p.is_agent() && !matches!(p.status, Status::Finished) {
                p.status = Status::Finished;
                p.stats.finished_at = p.clock;
                finish_events.push((p.clock, i));
            }
        }
        if st.tracing {
            for (at, i) in finish_events {
                st.trace.push(crate::report::TraceEvent::Finish {
                    at,
                    proc: ProcId(i),
                });
            }
        }
        let virtual_time = st
            .procs
            .iter()
            .filter(|p| !p.daemon)
            .map(|p| p.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        let reqs = st.req.take().map(ReqRecorder::finish);
        let timeseries = st.ts.take().map(|ts| {
            let procs: Vec<(u64, u64)> = st
                .procs
                .iter()
                .map(|p| (p.stats.busy.as_nanos(), p.mailbox.len() as u64))
                .collect();
            ts.finish(virtual_time, &st.metrics, &procs)
        });
        let trace = {
            let _prof = hostprof::scope(ProfScope::TraceExport);
            // The state is being discarded, so take the trace instead of
            // cloning it — the clone was a whole-trace copy on every run.
            let mut trace = std::mem::take(&mut st.trace);
            trace.sort_by_key(|e| e.at());
            trace
        };
        let wall_time = wall_start.elapsed();
        let host = if profiling {
            // Sim-proc threads merged their totals on exit (TLS drop); fold
            // in this thread's share before draining the global table.
            hostprof::flush_thread();
            Some(hostprof::take_profile(wall_time.as_nanos() as u64))
        } else {
            None
        };
        Ok(SimReport {
            virtual_time,
            wall_time,
            total_msgs: st.total_msgs,
            total_bytes: st.total_bytes,
            dropped_msgs: st.dropped_msgs,
            procs: st.procs.iter().map(|p| p.stats.clone()).collect(),
            trace,
            metrics: st.metrics.clone(),
            labels: st.labels.clone(),
            net: self.shared.cfg.net.clone(),
            timeseries,
            reqs,
            host,
        })
    }
}
