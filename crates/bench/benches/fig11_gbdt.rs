//! Figure 11 — GBDT on the Gender dataset: PS2 vs XGBoost (paper §6.3.2).
//!
//! Paper: PS2 builds 100 trees in 2435 s, XGBoost needs 7942 s (3.3×). The
//! bottleneck it blames is XGBoost's AllReduce-based split finding; PS2
//! pushes partial histograms to the servers and finds splits there.
//!
//! Scaled: Gender ÷5000, 10 trees of depth 5 with 50-bin histograms (the
//! per-tree cost is what the figure compares; we also extrapolate to the
//! paper's 100 trees).

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, print_traces, SERVERS, WORKERS};
use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::presets;
use ps2_ml::gbdt::{train_gbdt, GbdtBackend, GbdtConfig};
use ps2_ml::hyper::GbdtHyper;
use ps2_ml::TrainingTrace;

fn main() {
    banner("Figure 11", "GBDT on Gender: PS2 vs XGBoost (AllReduce)");
    paper_says("100 trees: PS2 2435s vs XGBoost 7942s (3.3x)");

    let hyper = GbdtHyper {
        num_trees: 10,
        max_depth: 5,
        histogram_bins: 50,
        ..GbdtHyper::default()
    };
    let mut traces: Vec<TrainingTrace> = Vec::new();
    let mut per_tree = Vec::new();
    for backend in [GbdtBackend::Ps2Dcv, GbdtBackend::XgboostStyle] {
        let mut preset = presets::gender(WORKERS, 5);
        // Keep the histogram table laptop-sized: fewer features, same shape.
        preset.gen.dim = 800;
        preset.gen.rows = 16_000;
        let gen = preset.gen.clone();
        let (out, _) = run_ps2(
            ClusterSpec {
                workers: WORKERS,
                servers: SERVERS,
                ..ClusterSpec::default()
            },
            21,
            move |ctx, ps2| {
                let cfg = GbdtConfig {
                    dataset: gen,
                    hyper,
                };
                train_gbdt(ctx, ps2, &cfg, backend)
            },
        );
        let (trace, trees) = out;
        assert_eq!(trees.len(), hyper.num_trees);
        per_tree.push(trace.time_per_iteration());
        traces.push(trace);
    }

    let refs: Vec<&TrainingTrace> = traces.iter().collect();
    print_traces("fig11", &refs);

    let mut f = csv("fig11_summary.csv");
    writeln!(f, "system,sec_per_tree,sec_100_trees").unwrap();
    println!(
        "\n  {:>12} {:>14} {:>18}",
        "system", "s/tree", "s for 100 trees"
    );
    for (t, &pt) in traces.iter().zip(&per_tree) {
        println!("  {:>12} {:>14.1} {:>18.0}", t.label, pt, pt * 100.0);
        writeln!(f, "{},{:.3},{:.1}", t.label, pt, pt * 100.0).unwrap();
    }
    println!(
        "\n  PS2 speedup over XGBoost: {:.2}x (paper: 3.3x)",
        per_tree[1] / per_tree[0]
    );
}
