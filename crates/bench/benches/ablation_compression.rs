//! Ablation — message compression (the paper's LDA engineering, §6.3.3:
//! part of PS2's 9× over Glint is "message compression technique").

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, SERVERS};
use ps2_core::{run_ps2, ClusterSpec};

fn main() {
    banner("Ablation", "4-byte wire compression vs raw f64");
    paper_says("PS2's LDA advantage includes \"message compression technique\"");

    let dim = 2_000_000u64;
    let mut f = csv("ablation_compression.csv");
    writeln!(f, "mode,pull_s,push_s,total_bytes").unwrap();
    println!(
        "\n  {:>12} {:>12} {:>12} {:>14}",
        "mode", "pull", "push", "total bytes"
    );
    for compress in [false, true] {
        let ((pull_s, push_s), report) = run_ps2(
            ClusterSpec {
                workers: 2,
                servers: SERVERS,
                ..ClusterSpec::default()
            },
            7,
            move |ctx, ps2| {
                let mut v = ps2.dense_dcv(ctx, dim, 1);
                if compress {
                    v = v.compressed();
                }
                let values = vec![1.0f64; dim as usize];
                let t0 = ctx.now();
                let _ = v.pull(ctx);
                let t1 = ctx.now();
                v.add_dense(ctx, &values);
                let t2 = ctx.now();
                ((t1 - t0).as_secs_f64(), (t2 - t1).as_secs_f64())
            },
        );
        let mode = if compress { "4-byte" } else { "8-byte" };
        println!(
            "  {:>12} {:>11.4}s {:>11.4}s {:>14}",
            mode, pull_s, push_s, report.total_bytes
        );
        writeln!(f, "{mode},{pull_s:.6},{push_s:.6},{}", report.total_bytes).unwrap();
    }
    println!("\n  compression halves the bytes of every pull/push at identical results");
    println!("  (counts in LDA fit comfortably in 32 bits).");
}
