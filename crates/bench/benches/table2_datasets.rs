//! Table 2 — dataset statistics: the paper's originals next to the scaled
//! synthetic stand-ins this reproduction trains on.

use std::io::Write;

use ps2_bench::{banner, csv};
use ps2_data::presets;

fn main() {
    banner(
        "Table 2",
        "dataset statistics (original vs scaled synthetic)",
    );
    let mut f = csv("table2.csv");
    writeln!(
        f,
        "model,dataset,orig_rows,orig_cols,orig_nnz,orig_size,scaled_rows,scaled_cols,scaled_nnz"
    )
    .unwrap();
    println!(
        "\n  {:<8} {:<8} | {:>12} {:>12} {:>14} {:>9} | {:>10} {:>10} {:>12}",
        "model", "dataset", "rows", "cols", "nnz", "size", "rows*", "cols*", "nnz*"
    );
    let sparse = [
        presets::kddb(20, 1),
        presets::kdd12(20, 1),
        presets::ctr(20, 1),
        presets::gender(20, 1),
    ];
    for p in sparse {
        let o = p.original;
        println!(
            "  {:<8} {:<8} | {:>12} {:>12} {:>14} {:>9} | {:>10} {:>10} {:>12}",
            p.model,
            p.name,
            o.rows,
            o.cols,
            o.nnz,
            o.size,
            p.gen.rows,
            p.gen.dim,
            p.gen.total_nnz()
        );
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{}",
            p.model,
            p.name,
            o.rows,
            o.cols,
            o.nnz,
            o.size,
            p.gen.rows,
            p.gen.dim,
            p.gen.total_nnz()
        )
        .unwrap();
    }
    for p in [presets::pubmed(20, 1), presets::app(20, 1)] {
        let o = p.original;
        println!(
            "  {:<8} {:<8} | {:>12} {:>12} {:>14} {:>9} | {:>10} {:>10} {:>12}",
            "LDA",
            p.name,
            o.rows,
            o.cols,
            o.nnz,
            o.size,
            p.gen.docs,
            p.gen.vocab,
            p.gen.total_tokens()
        );
        writeln!(
            f,
            "LDA,{},{},{},{},{},{},{},{}",
            p.name,
            o.rows,
            o.cols,
            o.nnz,
            o.size,
            p.gen.docs,
            p.gen.vocab,
            p.gen.total_tokens()
        )
        .unwrap();
    }
    for p in [presets::graph1(1), presets::graph2(1)] {
        println!(
            "  {:<8} {:<8} | {:>12} {:>12} {:>14} {:>9} | {:>10} {:>10} {:>12}",
            "DeepWalk",
            p.name,
            p.original_vertices,
            "-",
            p.original_walks,
            p.original_size,
            p.gen.vertices,
            "-",
            p.num_walks
        );
        writeln!(
            f,
            "DeepWalk,{},{},-,{},{},{},-,{}",
            p.name,
            p.original_vertices,
            p.original_walks,
            p.original_size,
            p.gen.vertices,
            p.num_walks
        )
        .unwrap();
    }
    println!("\n  (*) scaled synthetic generator; ratios (nnz/row, cols:rows) preserved.");
}
