//! Ablation — MLlib\* (the paper's reference [34]): Spark MLlib improved
//! with local replicas + ring-AllReduce model averaging, no parameter
//! servers. Where does the driver-free Spark design land between MLlib and
//! PS2, and where does it still lose?

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, WORKERS};
use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::SparseDatasetGen;
use ps2_ml::lr::{train_lr, train_lr_mllib_star, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;

fn main() {
    banner(
        "Ablation",
        "MLlib* (AllReduce model averaging) vs MLlib vs PS2",
    );
    paper_says("related work [34]: \"MLlib* further optimizes MLlib by integrating");
    paper_says("model averaging and AllReduce\"");

    let mut f = csv("ablation_mllib_star.csv");
    writeln!(f, "features,mllib_s,mllib_star_s,ps2_s").unwrap();
    println!(
        "\n  total time for 10 LR-SGD iterations, 20 workers\n  {:>10} {:>10} {:>10} {:>10}",
        "features", "MLlib", "MLlib*", "PS2"
    );
    for dim in [50_000u64, 500_000, 5_000_000] {
        let run = |which: u8| {
            let (trace, _) = run_ps2(
                ClusterSpec {
                    workers: WORKERS,
                    servers: WORKERS,
                    ..ClusterSpec::default()
                },
                3,
                move |ctx, ps2| {
                    let gen = SparseDatasetGen::new(20_000, dim, 25, WORKERS, 7);
                    let mut cfg = LrConfig::new(gen, Optimizer::Sgd, 10);
                    cfg.hyper.mini_batch_fraction = 0.01;
                    match which {
                        0 => train_lr(ctx, ps2, &cfg, LrBackend::SparkDriver),
                        1 => train_lr_mllib_star(ctx, ps2, &cfg),
                        _ => train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv),
                    }
                },
            );
            trace.total_time()
        };
        let (mllib, star, ps2t) = (run(0), run(1), run(2));
        println!("  {dim:>10} {mllib:>9.2}s {star:>9.2}s {ps2t:>9.2}s");
        writeln!(f, "{dim},{mllib:.4},{star:.4},{ps2t:.4}").unwrap();
    }
    println!("\n  AllReduce removes the driver bottleneck, but still moves 2x the");
    println!("  dense model per worker per iteration; PS2's sparse working-set");
    println!("  traffic stays flat as the model widens.");
}
