//! Figure 13 — scalability and fault tolerance (paper §6.4, §6.5).
//!
//! (a) LR on CTR with 50w/50s → 100w/50s → 100w/100s. Paper: 4519 s →
//!     2865 s → 2199 s (2.05× doubling both); slightly super-linear because
//!     the starved cluster also suffered network failures. The paper's CTR
//!     runs are *compute-bound* (57B nnz per epoch); since our data is
//!     scaled ÷1000 the bench scales the simulated CPU rate down to restore
//!     the compute-bound regime, and injects the paper's observed failures
//!     at the starved configuration.
//! (b) Time per iteration versus model size, PS2 vs MLlib (paper: MLlib
//!     degrades 168×, PS2 only 8.5× over 40K → 60,000K features). Adam is
//!     used (as in §6.2), so the model update is a dense server-side zip
//!     whose cost grows with the model — the source of PS2's own (mild)
//!     growth.
//! (c) Task-failure tolerance: p ∈ {0, 0.01, 0.1}. Paper: 66 s → 74 s →
//!     127 s, all converging to the same solution.

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, WORKERS};
use ps2_core::{run_ps2, run_ps2_with, ClusterSpec, ComputeConfig, SimBuilder, SimTime};
use ps2_data::{presets, SparseDatasetGen};
use ps2_ml::lr::{train_lr, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;

fn adam() -> Optimizer {
    Optimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        epsilon: 1e-8,
    }
}

fn main() {
    part_a();
    part_b();
    part_c();
}

fn part_a() {
    banner("Figure 13(a)", "scaling workers/servers on CTR");
    paper_says("50w/50s 4519s -> 100w/50s 2865s -> 100w/100s 2199s (2.05x)");
    let configs = [(50usize, 50usize, 0.01), (100, 50, 0.0), (100, 100, 0.0)];
    let mut f = csv("fig13a.csv");
    writeln!(f, "workers,servers,seconds").unwrap();
    println!("\n  {:>8} {:>8} {:>12}", "workers", "servers", "seconds");
    let mut first = None;
    for (w, s, fail) in configs {
        let builder = SimBuilder::new().seed(41).compute(ComputeConfig {
            // Restore the compute-bound regime of the unscaled workload
            // (data ÷1000, so CPU rate ÷1000).
            flops_per_sec: 2.0e6,
            ..ComputeConfig::default()
        });
        let (trace, _) = run_ps2_with(
            builder,
            ClusterSpec {
                workers: w,
                servers: s,
                ..ClusterSpec::default()
            },
            move |ctx, ps2| {
                // Starved clusters saw network failures in the paper's logs.
                ps2.spark.failure.task_failure_prob = fail;
                ps2.spark.failure.failure_waste = SimTime::from_millis(3);
                ps2.spark.failure.max_task_attempts = 100;
                let gen = presets::ctr(w, 3).gen;
                let cfg = LrConfig::new(gen, Optimizer::Sgd, 15);
                train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
            },
        );
        let secs = trace.total_time();
        println!("  {w:>8} {s:>8} {secs:>12.2}");
        writeln!(f, "{w},{s},{secs:.4}").unwrap();
        first.get_or_insert(secs);
        if (w, s) == (100, 100) {
            println!(
                "\n  speedup doubling both: {:.2}x (paper: 2.05x)",
                first.unwrap() / secs
            );
        }
    }
}

fn part_b() {
    banner(
        "Figure 13(b)",
        "time per iteration vs model size: PS2 vs MLlib",
    );
    paper_says("40K->60,000K features: MLlib 168x slower; PS2 only 8.5x (0.2s->1.7s)");
    let dims: [u64; 4] = [4_000, 300_000, 3_000_000, 6_000_000];
    let mut f = csv("fig13b.csv");
    writeln!(f, "features,ps2_sec_per_iter,mllib_sec_per_iter").unwrap();
    println!(
        "\n  {:>10} {:>14} {:>14}",
        "features", "PS2 s/iter", "MLlib s/iter"
    );
    let mut firsts: Option<(f64, f64)> = None;
    let mut lasts = (0.0, 0.0);
    for dim in dims {
        let mut row = [0.0f64; 2];
        for (i, backend) in [LrBackend::Ps2Dcv, LrBackend::SparkDriver]
            .into_iter()
            .enumerate()
        {
            let (trace, _) = run_ps2(
                ClusterSpec {
                    workers: WORKERS,
                    servers: WORKERS,
                    ..ClusterSpec::default()
                },
                43,
                move |ctx, ps2| {
                    let mut cfg = LrConfig::new(
                        SparseDatasetGen::new(20_000, dim, 30, WORKERS, 7),
                        adam(),
                        5,
                    );
                    cfg.hyper.mini_batch_fraction = 0.01;
                    cfg.hyper.learning_rate = 0.01;
                    train_lr(ctx, ps2, &cfg, backend)
                },
            );
            row[i] = trace.time_per_iteration();
        }
        println!("  {:>10} {:>14.4} {:>14.4}", dim, row[0], row[1]);
        writeln!(f, "{dim},{:.6},{:.6}", row[0], row[1]).unwrap();
        firsts.get_or_insert((row[0], row[1]));
        lasts = (row[0], row[1]);
    }
    let (p0, m0) = firsts.unwrap();
    println!(
        "\n  growth over the sweep: PS2 {:.1}x (paper 8.5x), MLlib {:.0}x (paper 168x)",
        lasts.0 / p0,
        lasts.1 / m0
    );
}

fn part_c() {
    banner("Figure 13(c)", "task-failure tolerance");
    paper_says("p=0: 66s, p=0.01: 74s, p=0.1: 127s; same final solution");
    let mut f = csv("fig13c.csv");
    writeln!(f, "failure_prob,seconds,final_loss,retries").unwrap();
    println!(
        "\n  {:>8} {:>12} {:>12} {:>9}",
        "p(fail)", "seconds", "final loss", "retries"
    );
    for p in [0.0, 0.01, 0.1] {
        let ((trace, retries), _) = run_ps2(
            ClusterSpec {
                workers: WORKERS,
                servers: WORKERS,
                ..ClusterSpec::default()
            },
            47,
            move |ctx, ps2| {
                ps2.spark.failure.task_failure_prob = p;
                // A failed attempt wastes roughly half a gradient task.
                ps2.spark.failure.failure_waste = SimTime::from_millis(2);
                ps2.spark.failure.max_task_attempts = 1000;
                let gen = presets::kddb(WORKERS, 1).gen;
                let cfg = LrConfig::new(gen, Optimizer::Sgd, 30);
                let t = train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv);
                (t, ps2.spark.task_retries)
            },
        );
        println!(
            "  {:>8} {:>12.2} {:>12.5} {:>9}",
            p,
            trace.total_time(),
            trace.final_loss(),
            retries
        );
        writeln!(
            f,
            "{p},{:.4},{:.6},{retries}",
            trace.total_time(),
            trace.final_loss()
        )
        .unwrap();
    }
    println!("\n  note: the gradient push is each task's final operation, so");
    println!("  retries never double-apply updates and all runs converge alike.");
}
