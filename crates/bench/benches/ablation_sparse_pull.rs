//! Ablation — sparse versus dense pulls: the mechanism behind PS2's win
//! over Petuum in Figure 10 (§6.3.1: "PS2 supports sparse communication and
//! only pulls the needed model parameters").

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, SERVERS};
use ps2_core::{run_ps2, ClusterSpec};

fn main() {
    banner("Ablation", "sparse vs dense (full-model) pulls");
    paper_says("the speedup over Petuum \"mostly comes from\" sparse pulls");

    let dim = 5_000_000u64;
    let working_sets = [1_000usize, 10_000, 100_000, 1_000_000];
    let mut f = csv("ablation_sparse_pull.csv");
    writeln!(f, "working_set,sparse_pull_s,dense_pull_s,advantage").unwrap();
    println!(
        "\n  model dim = {dim}\n  {:>12} {:>14} {:>14} {:>10}",
        "working set", "sparse pull", "dense pull", "advantage"
    );
    for ws in working_sets {
        let (times, _) = run_ps2(
            ClusterSpec {
                workers: 2,
                servers: SERVERS,
                ..ClusterSpec::default()
            },
            5,
            move |ctx, ps2| {
                let v = ps2.dense_dcv(ctx, dim, 1);
                // Evenly spread working-set indices.
                let cols: Vec<u64> = (0..ws as u64).map(|i| i * dim / ws as u64).collect();
                let t0 = ctx.now();
                let sparse = v.pull_indices(ctx, &cols);
                let t1 = ctx.now();
                let dense = v.pull(ctx);
                let t2 = ctx.now();
                assert_eq!(sparse.len(), ws);
                assert_eq!(dense.len() as u64, dim);
                ((t1 - t0).as_secs_f64(), (t2 - t1).as_secs_f64())
            },
        );
        let (sp, de) = times;
        println!("  {:>12} {:>13.4}s {:>13.4}s {:>9.1}x", ws, sp, de, de / sp);
        writeln!(f, "{ws},{sp:.6},{de:.6},{:.2}", de / sp).unwrap();
    }
    println!("\n  the advantage decays as the working set approaches the model size —");
    println!("  exactly why PS2's edge over Petuum is ~2x, not orders of magnitude.");
}
