//! Ablation — dimension co-location (the paper's Figure 4 story).
//!
//! `dot` between two DCVs `derive`d from one allocation (co-located) versus
//! two independent `dense` allocations with misaligned partition plans:
//! the misaligned op must shuffle segments between servers.

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, SERVERS};
use ps2_core::{run_ps2, ClusterSpec};

fn main() {
    banner("Ablation", "co-located vs misaligned DCV ops");
    paper_says("Figure 4: derive() vs independent dense() — the latter \"would");
    paper_says("incur huge communication cost among parameter servers\"");

    let dims = [100_000u64, 1_000_000, 10_000_000];
    let mut f = csv("ablation_colocation.csv");
    writeln!(f, "dim,colocated_dot_s,misaligned_dot_s,slowdown").unwrap();
    println!(
        "\n  {:>12} {:>16} {:>16} {:>10}",
        "dim", "co-located dot", "misaligned dot", "slowdown"
    );
    for dim in dims {
        let (times, _) = run_ps2(
            ClusterSpec {
                workers: 2,
                servers: SERVERS,
                ..ClusterSpec::default()
            },
            3,
            move |ctx, ps2| {
                let a = ps2.dense_dcv(ctx, dim, 2);
                let a2 = a.derive(ctx);
                a.fill(ctx, 1.0);
                a2.fill(ctx, 2.0);
                let b = ps2.dense_dcv_misaligned(ctx, dim, 1, 1);
                b.fill(ctx, 2.0);

                let t0 = ctx.now();
                let d1 = a.dot(ctx, &a2);
                let t1 = ctx.now();
                let d2 = a.dot(ctx, &b);
                let t2 = ctx.now();
                assert_eq!(d1, d2, "results must agree");
                ((t1 - t0).as_secs_f64(), (t2 - t1).as_secs_f64())
            },
        );
        let (co, mis) = times;
        println!(
            "  {:>12} {:>15.4}s {:>15.4}s {:>9.1}x",
            dim,
            co,
            mis,
            mis / co
        );
        writeln!(f, "{dim},{co:.6},{mis:.6},{:.2}", mis / co).unwrap();
    }
}
