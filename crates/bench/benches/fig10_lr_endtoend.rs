//! Figure 10 — end-to-end LR (SGD) comparison: PS2 vs Spark MLlib vs DistML
//! vs Petuum on KDDB and KDD12 (paper §6.3.1).
//!
//! Paper: PS2 converges fastest — 1.6× over Petuum on KDDB, 2.3× on KDD12;
//! MLlib slowest; DistML between and not robust. The mechanism: PS2's
//! sparse pulls move only the mini-batch's working set; Petuum pulls the
//! whole model; MLlib funnels everything through the driver.

use ps2_bench::{
    banner, common_target, paper_says, print_time_to_loss, print_traces, SERVERS, WORKERS,
};
use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::presets;
use ps2_ml::lr::{train_lr, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;
use ps2_ml::TrainingTrace;

fn panel(fig: &str, preset: presets::SparsePreset, iterations: usize) {
    let systems = [
        LrBackend::Ps2Dcv,
        LrBackend::PetuumStyle,
        LrBackend::DistmlStyle,
        LrBackend::SparkDriver,
    ];
    let mut traces: Vec<TrainingTrace> = Vec::new();
    for backend in systems {
        let gen = preset.gen.clone();
        let (trace, _) = run_ps2(
            ClusterSpec {
                workers: WORKERS,
                servers: SERVERS,
                ..ClusterSpec::default()
            },
            11,
            move |ctx, ps2| {
                // Paper Table 4 uses learning_rate = 0.618 with ~2M-example
                // mini-batches; our scaled batches are ~1000x smaller, so a
                // proportionally larger rate keeps per-iteration progress
                // comparable (fraction stays at the paper's 0.01).
                let mut cfg = LrConfig::new(gen, Optimizer::Sgd, iterations);
                cfg.hyper.learning_rate = 5.0;
                train_lr(ctx, ps2, &cfg, backend)
            },
        );
        traces.push(trace);
    }
    let refs: Vec<&TrainingTrace> = traces.iter().collect();
    print_traces(fig, &refs);
    print_time_to_loss(&refs, common_target(&refs));
}

fn main() {
    banner(
        "Figure 10(a)",
        "LR-SGD on KDDB: PS2 vs Petuum vs DistML vs MLlib",
    );
    paper_says("PS2 fastest (1.6x over Petuum); MLlib slowest; DistML not robust");
    panel("fig10a", presets::kddb(WORKERS, 1), 150);

    banner("Figure 10(b)", "LR-SGD on KDD12");
    paper_says("PS2 2.3x over Petuum");
    panel("fig10b", presets::kdd12(WORKERS, 2), 150);
}
