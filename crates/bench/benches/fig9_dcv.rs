//! Figure 9 — effectiveness of the DCV abstraction (paper §6.2).
//!
//! (a) Adam-LR on KDDB: Spark- vs PS- vs PS2- (paper: PS2 15.7× vs Spark,
//!     4.7× vs PS at 0.3 loss).
//! (b) Adam-LR on CTR (much wider model): 55.6× vs Spark, 5× vs PS.
//! (c) DeepWalk on Graph1, 20 servers→paper used few: PS2 5× vs PS.
//! (d) DeepWalk on Graph2 with 30 servers: speedup shrinks to 1.4×.

use ps2_bench::{
    banner, common_target, paper_says, print_time_to_loss, print_traces, SERVERS, WORKERS,
};
use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::presets;
use ps2_ml::deepwalk::{train_deepwalk, DeepWalkBackend, DeepWalkConfig};
use ps2_ml::hyper::DeepWalkHyper;
use ps2_ml::lr::{train_lr, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;
use ps2_ml::TrainingTrace;

fn adam() -> Optimizer {
    Optimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        epsilon: 1e-8,
    }
}

fn lr_panel(fig: &str, dataset: ps2_data::presets::SparsePreset, iterations: usize) {
    let backends = [
        (LrBackend::Ps2Dcv, "PS2-Adam"),
        (LrBackend::PsPullPush, "PS-Adam"),
        (LrBackend::SparkDriver, "Spark-Adam"),
    ];
    let mut traces: Vec<TrainingTrace> = Vec::new();
    for (backend, _) in backends {
        let gen = dataset.gen.clone();
        let (trace, _) = run_ps2(
            ClusterSpec {
                workers: WORKERS,
                servers: SERVERS,
                ..ClusterSpec::default()
            },
            9,
            move |ctx, ps2| {
                let mut cfg = LrConfig::new(gen, adam(), iterations);
                cfg.hyper.learning_rate = 0.01;
                train_lr(ctx, ps2, &cfg, backend)
            },
        );
        traces.push(trace);
    }
    let refs: Vec<&TrainingTrace> = traces.iter().collect();
    print_traces(fig, &refs);
    print_time_to_loss(&refs, common_target(&refs));
}

fn deepwalk_panel(fig: &str, preset: presets::GraphPreset, servers: usize, iterations: usize) {
    let mut traces = Vec::new();
    for backend in [DeepWalkBackend::Ps2Dcv, DeepWalkBackend::PsPullPush] {
        let p = preset.clone();
        let (trace, _) = run_ps2(
            ClusterSpec {
                workers: WORKERS,
                servers,
                ..ClusterSpec::default()
            },
            13,
            move |ctx, ps2| {
                let g = p.gen.generate();
                let walks = ps2_data::RandomWalks::sample(&g, p.num_walks, p.walk_len, 6);
                let cfg = DeepWalkConfig {
                    vertices: p.gen.vertices,
                    hyper: DeepWalkHyper::default(),
                    batch_per_worker: 512 / WORKERS * 8, // paper batch 512, spread wider
                    iterations,
                    seed: 17,
                };
                train_deepwalk(ctx, ps2, &cfg, &walks, backend)
            },
        );
        traces.push(trace);
    }
    let refs: Vec<&TrainingTrace> = traces.iter().collect();
    print_traces(fig, &refs);
    let t_ps2 = traces[0].total_time();
    let t_ps = traces[1].total_time();
    println!(
        "\n  PS2-DeepWalk speedup over PS-DeepWalk at {servers} servers: {:.2}x",
        t_ps / t_ps2
    );
}

fn main() {
    banner("Figure 9(a)", "Adam-LR on KDDB: Spark- vs PS- vs PS2-");
    paper_says("to 0.3 loss: PS2 59s, PS 277s (4.7x), Spark 926s (15.7x)");
    lr_panel("fig9a", presets::kddb(WORKERS, 1), 60);

    banner("Figure 9(b)", "Adam-LR on CTR (wide model)");
    paper_says("PS2 5x faster than PS-Adam, 55.6x faster than Spark-Adam");
    lr_panel("fig9b", presets::ctr(WORKERS, 2), 20);

    banner("Figure 9(c)", "DeepWalk on Graph1 (few servers)");
    paper_says("PS2-DeepWalk 5x faster than PS-DeepWalk");
    deepwalk_panel("fig9c", presets::graph1(3), 4, 10);

    banner("Figure 9(d)", "DeepWalk on Graph2 with 30 servers");
    paper_says("speedup shrinks to 1.4x: dot partial-gathers grow with servers");
    deepwalk_panel("fig9d", presets::graph2(4), 30, 6);
}
