//! Ablation — column versus row partitioning (§4.3: row partitioning
//! "cannot run row access operators in parallel, causing the single-point
//! problem").
//!
//! W workers concurrently pull one wide row. Under column partitioning the
//! row is spread over S servers (aggregate bandwidth S×); under row
//! partitioning the whole row sits on one server whose out-NIC serializes
//! every worker.

use std::io::Write;

use ps2_bench::{banner, csv, paper_says};
use ps2_ps::{deploy_ps, InitKind, MatrixHandle, Partitioning, PsConfig, PsMaster};
use ps2_simnet::{ProcId, SimBuilder, SimTime};

fn makespan(partitioning: Partitioning, servers: usize, workers: usize, dim: u64) -> f64 {
    let mut sim = SimBuilder::new().seed(2).build();
    let (srv, storage) = deploy_ps(&mut sim, servers, 500e6);
    let worker_ids: Vec<ProcId> = (0..workers).map(|w| ProcId(servers + 2 + w)).collect();
    sim.spawn("coordinator", move |ctx| {
        let mut m = PsMaster::new(srv, storage, PsConfig::default());
        let h = m.create_matrix(ctx, dim, 1, partitioning, InitKind::Zero);
        for &w in &worker_ids {
            ctx.send(w, 7, h.clone(), 64);
        }
    });
    let mut slots = Vec::new();
    for i in 0..workers {
        let slot = sim.spawn_collect(&format!("worker-{i}"), move |ctx| {
            let env = ctx.recv();
            let h: MatrixHandle = env.downcast::<MatrixHandle>();
            let _ = h.pull_row(ctx, 0);
            ctx.now()
        });
        slots.push(slot);
    }
    sim.run().unwrap();
    slots
        .into_iter()
        .map(|s| s.take())
        .max()
        .unwrap_or(SimTime::ZERO)
        .as_secs_f64()
}

fn main() {
    banner("Ablation", "column vs row partitioning for row access");
    paper_says("§4.3: with row partitioning \"the system cannot run row access");
    paper_says("operators in parallel, causing single-point problem\"");

    let dim = 4_000_000u64;
    let workers = 16usize;
    let mut f = csv("ablation_partitioning.csv");
    writeln!(f, "servers,column_s,row_s,advantage").unwrap();
    println!(
        "\n  {workers} workers pulling a {dim}-wide row concurrently\n  {:>8} {:>12} {:>12} {:>10}",
        "servers", "column", "row", "advantage"
    );
    for servers in [2usize, 4, 8, 16] {
        let col = makespan(Partitioning::Column, servers, workers, dim);
        let row = makespan(Partitioning::Row, servers, workers, dim);
        println!(
            "  {:>8} {:>11.4}s {:>11.4}s {:>9.1}x",
            servers,
            col,
            row,
            row / col
        );
        writeln!(f, "{servers},{col:.6},{row:.6},{:.2}", row / col).unwrap();
    }
    println!("\n  row partitioning never improves with servers (one owner serializes);");
    println!("  column partitioning scales with the fleet.");
}
