//! Table 3 — algorithms supported by the compared systems.

use std::io::Write;

use ps2_bench::{banner, csv};
use ps2_ml::capabilities::{supports, Algorithm, System};

fn main() {
    banner("Table 3", "algorithms supported by each system");
    let mut f = csv("table3.csv");
    write!(f, "system").unwrap();
    for a in Algorithm::all() {
        write!(f, ",{}", a.name()).unwrap();
    }
    writeln!(f).unwrap();

    print!("\n  {:<12}", "system");
    for a in Algorithm::all() {
        print!(" {:>9}", a.name());
    }
    println!();
    for s in System::all() {
        print!("  {:<12}", s.name());
        write!(f, "{}", s.name()).unwrap();
        for a in Algorithm::all() {
            let mark = if supports(s, a) { "yes" } else { "-" };
            print!(" {mark:>9}");
            write!(f, ",{mark}").unwrap();
        }
        println!();
        writeln!(f).unwrap();
    }
    println!("\n  PS2 is the only system covering all four workloads.");
}
