//! Figure 12 — LDA comparison (paper §6.3.3).
//!
//! (a) PubMED, K=1000 (scaled to 100): PS2 vs Petuum vs Glint.
//!     Paper: 386 s / 1440 s / 3500 s to converge — PS2 3.7× over Petuum,
//!     9× over Glint (sparse communication + message compression).
//! (b) PubMED, K=100 (scaled to 20): PS2 vs Spark MLlib. Paper: 17×.
//! (c) App (the corpus only PS2 can handle): PS2 alone.

use ps2_bench::{
    banner, common_target, paper_says, print_time_to_loss, print_traces, SERVERS, WORKERS,
};
use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::presets;
use ps2_ml::hyper::LdaHyper;
use ps2_ml::lda::{train_lda, LdaBackend, LdaConfig};
use ps2_ml::TrainingTrace;

fn run_backend(
    corpus: ps2_data::CorpusGen,
    topics: u32,
    iterations: usize,
    backend: LdaBackend,
) -> TrainingTrace {
    let (trace, _) = run_ps2(
        ClusterSpec {
            workers: WORKERS,
            servers: SERVERS,
            ..ClusterSpec::default()
        },
        31,
        move |ctx, ps2| {
            let cfg = LdaConfig {
                corpus,
                hyper: LdaHyper {
                    topics,
                    ..LdaHyper::default() // α = 0.5, β = 0.01 (Table 4)
                },
                iterations,
            };
            train_lda(ctx, ps2, &cfg, backend)
        },
    );
    trace
}

fn main() {
    banner(
        "Figure 12(a)",
        "LDA on PubMED (large K): PS2 vs Petuum vs Glint",
    );
    paper_says("converge: PS2 386s, Petuum 1440s (3.7x), Glint 3500s (9x)");
    let pubmed = presets::pubmed(WORKERS, 1);
    let traces: Vec<TrainingTrace> = [
        LdaBackend::Ps2Dcv,
        LdaBackend::PetuumStyle,
        LdaBackend::GlintStyle,
    ]
    .into_iter()
    .map(|b| run_backend(pubmed.gen.clone(), 100, 10, b))
    .collect();
    let refs: Vec<&TrainingTrace> = traces.iter().collect();
    print_traces("fig12a", &refs);
    print_time_to_loss(&refs, common_target(&refs));

    banner(
        "Figure 12(b)",
        "LDA on PubMED (small K): PS2 vs Spark MLlib",
    );
    paper_says("MLlib needs 6894s to converge; PS2 is 17x faster");
    let traces: Vec<TrainingTrace> = [LdaBackend::Ps2Dcv, LdaBackend::SparkDriver]
        .into_iter()
        .map(|b| run_backend(pubmed.gen.clone(), 20, 10, b))
        .collect();
    let refs: Vec<&TrainingTrace> = traces.iter().collect();
    print_traces("fig12b", &refs);
    print_time_to_loss(&refs, common_target(&refs));

    banner("Figure 12(c)", "LDA on App — the corpus only PS2 handles");
    paper_says("PS2 trains LDA on billions of documents");
    let app = presets::app(WORKERS, 2);
    let trace = run_backend(app.gen.clone(), 100, 6, LdaBackend::Ps2Dcv);
    print_traces("fig12c", &[&trace]);
}
