//! Figure 1 — empirical analysis of Spark MLlib (paper §2).
//!
//! (a) Time per iteration of LR+SGD on MLlib as the number of features
//!     grows (paper: 40K → 60,000K features, 168× degradation).
//! (b) Per-iteration breakdown into the four steps: model broadcast,
//!     gradient calculation, gradient aggregation, model update — with
//!     aggregation dominating at scale.
//!
//! 20 executors, mini-batch fraction 0.01, features scaled ÷10.

use std::io::Write;

use ps2_bench::{banner, csv, paper_says, WORKERS};
use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::SparseDatasetGen;
use ps2_ml::lr::{train_lr, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;

fn main() {
    banner("Figure 1", "Spark MLlib's single-node bottleneck");
    paper_says("40K -> 60,000K features: 168x slower per iteration;");
    paper_says("gradient aggregation occupies most of each iteration.");

    // Paper dims ÷10 so the largest model stays laptop-sized.
    let dims: [u64; 4] = [4_000, 300_000, 3_000_000, 6_000_000];
    let mut out = csv("fig1.csv");
    writeln!(
        out,
        "features,sec_per_iter,broadcast,gradient_calc,aggregation,model_update"
    )
    .unwrap();

    println!(
        "\n  {:>10} {:>10} | {:>9} {:>9} {:>9} {:>9}",
        "features", "s/iter", "bcast", "grad", "agg", "update"
    );
    let mut first = None;
    for dim in dims {
        let (trace, _) = run_ps2(
            ClusterSpec {
                workers: WORKERS,
                servers: 1, // MLlib uses no parameter servers
                ..ClusterSpec::default()
            },
            1,
            move |ctx, ps2| {
                let mut cfg = LrConfig::new(
                    SparseDatasetGen::new(20_000, dim, 30, WORKERS, 7),
                    Optimizer::Sgd,
                    5,
                );
                cfg.hyper.mini_batch_fraction = 0.01;
                train_lr(ctx, ps2, &cfg, LrBackend::SparkDriver)
            },
        );
        let per_iter = trace.time_per_iteration();
        let b = trace.breakdown.expect("MLlib backend records a breakdown");
        println!(
            "  {:>10} {:>10.3} | {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            dim, per_iter, b.broadcast, b.gradient_calc, b.aggregation, b.model_update
        );
        writeln!(
            out,
            "{dim},{per_iter:.6},{:.6},{:.6},{:.6},{:.6}",
            b.broadcast, b.gradient_calc, b.aggregation, b.model_update
        )
        .unwrap();
        first.get_or_insert(per_iter);
        if dim == *dims.last().unwrap() {
            let degradation = per_iter / first.unwrap();
            println!("\n  degradation smallest -> largest: {degradation:.0}x (paper: 168x)");
            let frac = b.aggregation / b.total();
            println!("  aggregation share at largest dim: {:.0}%", frac * 100.0);
        }
    }
}
