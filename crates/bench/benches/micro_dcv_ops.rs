//! Criterion microbenchmarks — real wall-clock cost of the reproduction's
//! hot paths (the simulator, DCV ops, data generators). These measure *this
//! implementation*, complementing the figure benches which measure
//! *simulated cluster time*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::{CorpusGen, GraphGen, SparseDatasetGen};
use ps2_simnet::{ProcId, SimBuilder};

fn spec() -> ClusterSpec {
    ClusterSpec {
        workers: 4,
        servers: 4,
        ..ClusterSpec::default()
    }
}

fn bench_simnet_round_trip(c: &mut Criterion) {
    c.bench_function("simnet/1000_rpc_round_trips", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new().seed(1).build();
            sim.spawn_daemon("server", |ctx| loop {
                let env = ctx.recv();
                ctx.reply(&env, (), 8);
            });
            sim.spawn("client", |ctx| {
                for _ in 0..1000 {
                    let _ = ctx.call(ProcId(0), 0, (), 64);
                }
            });
            sim.run().unwrap()
        })
    });
}

fn bench_dcv_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcv");
    for dim in [10_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("dot", dim), &dim, |b, &dim| {
            b.iter(|| {
                run_ps2(spec(), 1, move |ctx, ps2| {
                    let a = ps2.dense_dcv(ctx, dim, 2);
                    let a2 = a.derive(ctx);
                    a.fill(ctx, 1.0);
                    a2.fill(ctx, 2.0);
                    let mut acc = 0.0;
                    for _ in 0..10 {
                        acc += a.dot(ctx, &a2);
                    }
                    acc
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("pull_push", dim), &dim, |b, &dim| {
            b.iter(|| {
                run_ps2(spec(), 1, move |ctx, ps2| {
                    let v = ps2.dense_dcv(ctx, dim, 1);
                    let values = vec![1.0; dim as usize];
                    for _ in 0..5 {
                        v.add_dense(ctx, &values);
                        let _ = v.pull(ctx);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.bench_function("sparse_10k_rows", |b| {
        let gen = SparseDatasetGen::new(10_000, 100_000, 30, 1, 7);
        b.iter(|| gen.partition(0))
    });
    g.bench_function("graph_2540_vertices", |b| {
        let gg = GraphGen {
            vertices: 2_540,
            edges_per_vertex: 4,
            seed: 7,
        };
        b.iter(|| gg.generate())
    });
    g.bench_function("corpus_1k_docs", |b| {
        let cg = CorpusGen::new(1_000, 10_000, 50, 80, 1, 7);
        b.iter(|| cg.partition(0))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simnet_round_trip, bench_dcv_ops, bench_generators
}
criterion_main!(benches);
