//! Ablation — BSP vs SSP under stragglers (the consistency model of Petuum
//! [28] and the heterogeneity-aware PS the paper cites [16]).
//!
//! One of 8 workers is slowed by an extra 40 ms of compute per iteration.
//! BSP (staleness 0) paces the whole fleet at the straggler's speed; with a
//! staleness bound the healthy workers run ahead and overall progress per
//! wall-clock improves, at a (usually small) statistical cost.

use std::io::Write;

use ps2_bench::{banner, csv, paper_says};
use ps2_data::SparseDatasetGen;
use ps2_ml::ssp::{run_lr_ssp, SspConfig};
use ps2_simnet::SimTime;

fn main() {
    banner("Ablation", "BSP vs SSP staleness under a straggler");
    paper_says("Petuum's SSP [28] and heterogeneity-aware PS [16] motivate");
    paper_says("bounded staleness when workers are uneven");

    let mut f = csv("ablation_ssp.csv");
    writeln!(f, "staleness,mean_iter_time_s,final_loss").unwrap();
    println!(
        "\n  8 workers, worker 0 slowed 40ms/iter, 25 iterations\n  {:>10} {:>16} {:>12}",
        "staleness", "mean iter time", "final loss"
    );
    for staleness in [0u32, 1, 2, 4, 8] {
        let mut cfg = SspConfig::new(SparseDatasetGen::new(8_000, 20_000, 15, 8, 7), 8, 8);
        cfg.staleness = staleness;
        cfg.iterations = 25;
        cfg.straggler_slowdown = SimTime::from_millis(40);
        let (trace, _) = run_lr_ssp(&cfg);
        let mean_iter = trace.total_time() / trace.points.len().max(1) as f64;
        println!(
            "  {:>10} {:>15.4}s {:>12.5}",
            staleness,
            mean_iter,
            trace.final_loss()
        );
        writeln!(f, "{staleness},{mean_iter:.6},{:.6}", trace.final_loss()).unwrap();
    }
    println!("\n  staleness lets healthy workers proceed; losses stay comparable");
    println!("  because stale gradients at these bounds barely hurt SGD.");
}
