//! # ps2-bench — regenerating the paper's evaluation
//!
//! Each bench target in `benches/` reproduces one table or figure of the
//! paper's §6 on the simulated cluster and prints the same rows/series the
//! paper reports (plus the paper's headline numbers for side-by-side
//! comparison). `cargo bench` runs all of them; results are also appended
//! under `target/ps2-results/`.
//!
//! Absolute times differ from the paper (its testbed was a 2700-machine
//! production cluster; ours is a deterministic simulator driving scaled
//! datasets) — the claims under reproduction are the *shapes*: who wins, by
//! roughly what factor, and where the crossovers sit.

use std::fs::{self, File};
use std::io::Write;
use std::path::PathBuf;

use ps2_ml::TrainingTrace;

/// Standard cluster width used by most figures (paper: "the number of
/// executors/servers are 20").
pub const WORKERS: usize = 20;
pub const SERVERS: usize = 20;

/// Where bench targets append their machine-readable output.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/ps2-results");
    fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}

/// Open (truncate) a named CSV in the results dir.
pub fn csv(name: &str) -> File {
    File::create(results_dir().join(name)).expect("cannot create results file")
}

/// Print a figure banner.
pub fn banner(fig: &str, caption: &str) {
    println!();
    println!("================================================================");
    println!("{fig} — {caption}");
    println!("================================================================");
}

/// Print (and persist) a set of loss-versus-time traces as one series table.
pub fn print_traces(fig: &str, traces: &[&TrainingTrace]) {
    let mut f = csv(&format!("{fig}.csv"));
    writeln!(f, "system,iteration,seconds,loss").unwrap();
    for t in traces {
        println!(
            "\n  {} — {} iterations, {:.1}s total, final loss {:.4}",
            t.label,
            t.points.len(),
            t.total_time(),
            t.final_loss()
        );
        println!("    {:>6} {:>12} {:>12}", "iter", "seconds", "loss");
        let stride = (t.points.len() / 10).max(1);
        for (i, &(secs, loss)) in t.points.iter().enumerate() {
            if i % stride == 0 || i + 1 == t.points.len() {
                println!("    {i:>6} {secs:>12.3} {loss:>12.5}");
            }
        }
        for (i, &(secs, loss)) in t.points.iter().enumerate() {
            writeln!(f, "{},{},{:.6},{:.6}", t.label, i, secs, loss).unwrap();
        }
    }
}

/// Report the time each trace takes to first reach `target` loss, plus
/// speedups relative to the first trace.
pub fn print_time_to_loss(traces: &[&TrainingTrace], target: f64) {
    println!("\n  time to reach loss {target:.3}:");
    let base = traces[0].time_to_loss(target);
    for t in traces {
        match (t.time_to_loss(target), base) {
            (Some(tt), Some(b)) if tt > 0.0 => {
                println!(
                    "    {:<16} {:>10.2}s   ({:.2}x vs {})",
                    t.label,
                    tt,
                    tt / b,
                    traces[0].label
                )
            }
            (Some(tt), _) => println!("    {:<16} {:>10.2}s", t.label, tt),
            (None, _) => println!(
                "    {:<16}   not reached (final {:.4})",
                t.label,
                t.final_loss()
            ),
        }
    }
}

/// A loss target all traces reached: 5% above the worst of the best losses,
/// so every system has a crossing time.
pub fn common_target(traces: &[&TrainingTrace]) -> f64 {
    traces
        .iter()
        .map(|t| {
            t.points
                .iter()
                .map(|&(_, l)| l)
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::NEG_INFINITY, f64::max)
        * 1.02
        + 1e-9
}

/// Print a paper-reference line (the number the original reports).
pub fn paper_says(s: &str) {
    println!("  [paper] {s}");
}
