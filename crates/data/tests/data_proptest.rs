//! Property-based tests for the workload generators.

use proptest::prelude::*;
use ps2_data::{libsvm, CorpusGen, GraphGen, RandomWalks, SparseDatasetGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partitioning is a pure function: any partition count covers every
    /// row exactly once and per-row content is independent of partitioning.
    #[test]
    fn sparse_partitioning_is_content_stable(
        rows in 1u64..2_000,
        parts_a in 1usize..9,
        parts_b in 1usize..9,
        seed in 0u64..1_000
    ) {
        let mut ga = SparseDatasetGen::new(rows, 5_000, 10, parts_a, seed);
        let mut gb = ga.clone();
        ga.partitions = parts_a;
        gb.partitions = parts_b;
        let flat = |g: &SparseDatasetGen| -> Vec<(f64, usize)> {
            (0..g.partitions)
                .flat_map(|p| g.partition(p))
                .map(|e| (e.label, e.features.len()))
                .collect()
        };
        prop_assert_eq!(flat(&ga), flat(&gb));
    }

    /// libsvm write → read is the identity on generated examples.
    #[test]
    fn libsvm_round_trip(rows in 1u64..50, seed in 0u64..100) {
        let gen = SparseDatasetGen::new(rows, 500, 8, 1, seed);
        let examples = gen.partition(0);
        let mut buf = Vec::new();
        libsvm::write(&mut buf, &examples).unwrap();
        let back = libsvm::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), examples.len());
        for (a, b) in examples.iter().zip(&back) {
            prop_assert_eq!(a.label, b.label);
            prop_assert_eq!(&*a.features, &*b.features);
        }
    }

    /// Graphs are symmetric and connected-ish for any size/degree.
    #[test]
    fn graphs_are_well_formed(vertices in 2u32..400, m in 1u32..6, seed in 0u64..50) {
        let g = GraphGen { vertices, edges_per_vertex: m, seed }.generate();
        prop_assert_eq!(g.vertices() as u32, vertices);
        for (v, nbrs) in g.adj.iter().enumerate() {
            for &u in nbrs {
                prop_assert!(u < vertices);
                prop_assert!(g.adj[u as usize].contains(&(v as u32)));
            }
        }
        prop_assert!(g.adj.iter().all(|n| !n.is_empty()));
    }

    /// Walks stay on edges and have the requested length.
    #[test]
    fn walks_follow_edges(vertices in 2u32..200, n_walks in 1usize..50, len in 2usize..10) {
        let g = GraphGen { vertices, edges_per_vertex: 3, seed: 1 }.generate();
        let walks = RandomWalks::sample(&g, n_walks, len, 2);
        prop_assert_eq!(walks.walks.len(), n_walks);
        for w in &walks.walks {
            prop_assert_eq!(w.len(), len);
            for pair in w.windows(2) {
                prop_assert!(g.adj[pair[0] as usize].contains(&pair[1]));
            }
        }
    }

    /// Skip-gram pairs never pair a vertex with itself and respect the
    /// window.
    #[test]
    fn skip_gram_pairs_are_valid(window in 1usize..5, len in 2usize..10) {
        let g = GraphGen { vertices: 100, edges_per_vertex: 3, seed: 3 }.generate();
        let walks = RandomWalks::sample(&g, 20, len, 4);
        for p in walks.skip_gram_pairs(window) {
            prop_assert_ne!(p.center, p.context);
        }
    }

    /// Corpus documents are sorted, in-vocabulary, deterministic.
    #[test]
    fn corpus_documents_are_well_formed(docs in 1u64..100, vocab in 10u32..2_000, seed in 0u64..50) {
        let gen = CorpusGen::new(docs, vocab, 5, 30, 1, seed);
        for d in gen.partition(0) {
            prop_assert!(d.tokens() >= 1);
            prop_assert!(d.words.windows(2).all(|w| w[0].0 < w[1].0));
            prop_assert!(d.words.iter().all(|&(w, c)| w < vocab && c > 0));
        }
        let a = gen.document(0);
        let b = gen.document(0);
        prop_assert_eq!(a.words, b.words);
    }
}
