//! Power-law graphs, random walks, and skip-gram pair extraction for
//! DeepWalk.
//!
//! The paper notes (§6.1) that the original graphs were unavailable even to
//! the authors — "users from the business unit do the sampling of random
//! walks on graphs" — i.e. the training input *is* a set of walks. We mirror
//! that: [`GraphGen`] builds a preferential-attachment graph, and
//! [`RandomWalks`] samples the walk corpus that DeepWalk consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mix64;

/// An undirected graph in adjacency-list form.
#[derive(Clone, Debug)]
pub struct Graph {
    pub adj: Vec<Vec<u32>>,
}

impl Graph {
    pub fn vertices(&self) -> usize {
        self.adj.len()
    }

    pub fn edges(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }
}

/// Preferential-attachment (Barabási–Albert style) generator: new vertices
/// attach to `edges_per_vertex` existing vertices with probability
/// proportional to degree, yielding the power-law degree distribution of
/// social graphs like the paper's QQ network.
#[derive(Clone, Copy, Debug)]
pub struct GraphGen {
    pub vertices: u32,
    pub edges_per_vertex: u32,
    pub seed: u64,
}

impl GraphGen {
    pub fn generate(&self) -> Graph {
        assert!(self.vertices >= 2);
        let m = self.edges_per_vertex.max(1) as usize;
        let mut rng = StdRng::seed_from_u64(mix64(self.seed ^ 0x0067_7261_7068)); // "graph"
        let n = self.vertices as usize;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Endpoint pool: vertices appear once per incident edge — sampling
        // uniformly from it is degree-proportional attachment.
        let mut pool: Vec<u32> = Vec::with_capacity(2 * m * n);
        adj[0].push(1);
        adj[1].push(0);
        pool.extend_from_slice(&[0, 1]);
        for v in 2..n as u32 {
            let k = m.min(v as usize);
            let mut targets: Vec<u32> = Vec::with_capacity(k);
            while targets.len() < k {
                let t = pool[rng.gen_range(0..pool.len())];
                if t != v && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                adj[v as usize].push(t);
                adj[t as usize].push(v);
                pool.push(v);
                pool.push(t);
            }
        }
        Graph { adj }
    }
}

/// A corpus of fixed-length random walks over a graph.
#[derive(Clone, Debug)]
pub struct RandomWalks {
    pub walks: Vec<Vec<u32>>,
}

impl RandomWalks {
    /// Sample `num_walks` walks of length `walk_len` (paper Table 4:
    /// `length_of_random_walk = 8`), starting vertices round-robin.
    pub fn sample(graph: &Graph, num_walks: usize, walk_len: usize, seed: u64) -> RandomWalks {
        let n = graph.vertices() as u32;
        let mut walks = Vec::with_capacity(num_walks);
        for w in 0..num_walks {
            let mut rng = StdRng::seed_from_u64(mix64(seed ^ mix64(w as u64)));
            let mut cur = (w as u32) % n;
            let mut walk = Vec::with_capacity(walk_len);
            walk.push(cur);
            for _ in 1..walk_len {
                let nbrs = &graph.adj[cur as usize];
                if nbrs.is_empty() {
                    break;
                }
                cur = nbrs[rng.gen_range(0..nbrs.len())];
                walk.push(cur);
            }
            walks.push(walk);
        }
        RandomWalks { walks }
    }

    /// Extract skip-gram training pairs with the given window (paper Table
    /// 4: `window_size = 4`): every `(center, context)` co-occurrence within
    /// the window, in deterministic order.
    pub fn skip_gram_pairs(&self, window: usize) -> Vec<SkipGramPair> {
        let mut pairs = Vec::new();
        for walk in &self.walks {
            for (i, &u) in walk.iter().enumerate() {
                let lo = i.saturating_sub(window);
                let hi = (i + window).min(walk.len() - 1);
                for (j, &v) in walk.iter().enumerate().take(hi + 1).skip(lo) {
                    if i != j && u != v {
                        pairs.push(SkipGramPair {
                            center: u,
                            context: v,
                        });
                    }
                }
            }
        }
        pairs
    }
}

/// A positive (center, context) co-occurrence to embed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkipGramPair {
    pub center: u32,
    pub context: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        GraphGen {
            vertices: 500,
            edges_per_vertex: 3,
            seed: 7,
        }
        .generate()
    }

    #[test]
    fn graph_is_connected_enough_and_undirected() {
        let g = small();
        assert_eq!(g.vertices(), 500);
        for (v, nbrs) in g.adj.iter().enumerate() {
            for &u in nbrs {
                assert!(
                    g.adj[u as usize].contains(&(v as u32)),
                    "edge ({v},{u}) not symmetric"
                );
            }
        }
        assert!(g.adj.iter().all(|n| !n.is_empty()), "no isolated vertices");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = small();
        let mut degs: Vec<usize> = (0..g.vertices() as u32).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top = degs[..5].iter().sum::<usize>() as f64;
        let median = degs[g.vertices() / 2] as f64;
        assert!(
            top / 5.0 > 4.0 * median,
            "hubs should dominate: top5 avg {} vs median {median}",
            top / 5.0
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    fn walks_have_requested_shape_and_follow_edges() {
        let g = small();
        let walks = RandomWalks::sample(&g, 100, 8, 3);
        assert_eq!(walks.walks.len(), 100);
        for walk in &walks.walks {
            assert_eq!(walk.len(), 8);
            for w in walk.windows(2) {
                assert!(g.adj[w[0] as usize].contains(&w[1]), "walk uses non-edge");
            }
        }
    }

    #[test]
    fn skip_gram_pairs_respect_window() {
        let walks = RandomWalks {
            walks: vec![vec![1, 2, 3, 4, 5]],
        };
        let pairs = walks.skip_gram_pairs(1);
        // Each interior vertex pairs with both neighbours; ends with one.
        assert_eq!(pairs.len(), 2 * 4);
        assert!(pairs.contains(&SkipGramPair {
            center: 2,
            context: 3
        }));
        assert!(!pairs.iter().any(|p| p.center == 1 && p.context == 3));
    }
}
