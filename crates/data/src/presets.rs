//! The paper's Table 2 datasets, scaled to laptop size.
//!
//! Each preset keeps the original's *shape* — the rows:columns ratio and
//! average non-zeros per row (or tokens per document, walks per vertex) —
//! while shrinking absolute size so a simulated cluster can run on one
//! machine. The original statistics ride along so the benchmark harness can
//! print Table 2 with both columns.

use crate::{CorpusGen, GraphGen, SparseDatasetGen};

/// Statistics of the original dataset as reported in Table 2.
#[derive(Clone, Copy, Debug)]
pub struct OriginalStats {
    pub rows: u64,
    pub cols: u64,
    pub nnz: u64,
    pub size: &'static str,
}

/// A scaled classification dataset preset.
#[derive(Clone, Debug)]
pub struct SparsePreset {
    pub name: &'static str,
    pub model: &'static str,
    pub original: OriginalStats,
    pub gen: SparseDatasetGen,
}

/// A scaled corpus preset.
#[derive(Clone, Debug)]
pub struct CorpusPreset {
    pub name: &'static str,
    pub original: OriginalStats,
    pub gen: CorpusGen,
}

/// A scaled graph preset.
#[derive(Clone, Debug)]
pub struct GraphPreset {
    pub name: &'static str,
    /// Original vertex / walk counts.
    pub original_vertices: u64,
    pub original_walks: u64,
    pub original_size: &'static str,
    pub gen: GraphGen,
    pub num_walks: usize,
    pub walk_len: usize,
}

/// KDDB (LR): 19M × 29M, 585M nnz, 4.8 GB → rows ÷1000, columns ÷100.
///
/// Columns shrink less than rows on purpose: the paper's bottlenecks are
/// *model-size* effects (dense aggregation, full pulls) competing with
/// per-iteration fixed costs. Scaling both ÷1000 would shrink the model
/// 1000× while scheduler overheads shrink far less, flattening every curve;
/// keeping the model 10× wider preserves the ratio that produces the
/// paper's shapes. nnz/row is preserved exactly.
pub fn kddb(partitions: usize, seed: u64) -> SparsePreset {
    SparsePreset {
        name: "KDDB",
        model: "LR",
        original: OriginalStats {
            rows: 19_000_000,
            cols: 29_000_000,
            nnz: 585_000_000,
            size: "4.8GB",
        },
        gen: SparseDatasetGen::new(19_000, 290_000, 31, partitions, seed),
    }
}

/// KDD12 (LR): 149M × 54.6M, 1.64B nnz, 21 GB → rows ÷5000, columns ÷100
/// (see [`kddb`] for the scaling rationale).
pub fn kdd12(partitions: usize, seed: u64) -> SparsePreset {
    SparsePreset {
        name: "KDD12",
        model: "LR",
        original: OriginalStats {
            rows: 149_000_000,
            cols: 54_600_000,
            nnz: 1_640_000_000,
            size: "21GB",
        },
        gen: SparseDatasetGen::new(29_800, 546_000, 11, partitions, seed),
    }
}

/// CTR (LR): 343M × 1.7B, 57B nnz, 662 GB → scaled: very wide model
/// (the property Figure 9(b) stresses) with the original ~166 nnz/row.
pub fn ctr(partitions: usize, seed: u64) -> SparsePreset {
    SparsePreset {
        name: "CTR",
        model: "LR",
        original: OriginalStats {
            rows: 343_000_000,
            cols: 1_700_000_000,
            nnz: 57_000_000_000,
            size: "662.4GB",
        },
        gen: SparseDatasetGen::new(34_000, 1_700_000, 166, partitions, seed),
    }
}

/// PubMED (LDA): 8.2M docs, 141K vocab, 737M tokens → scaled ÷1000 docs,
/// ÷10 vocab, original ~90 tokens/doc.
pub fn pubmed(partitions: usize, seed: u64) -> CorpusPreset {
    CorpusPreset {
        name: "PubMED",
        original: OriginalStats {
            rows: 8_200_000,
            cols: 141_000,
            nnz: 737_000_000,
            size: "4GB",
        },
        gen: CorpusGen::new(8_200, 14_100, 50, 90, partitions, seed),
    }
}

/// App (LDA): 2.3B docs, 558K vocab, 161B tokens — the dataset only PS2
/// could handle (Figure 12(c)) → scaled but still the largest corpus here.
pub fn app(partitions: usize, seed: u64) -> CorpusPreset {
    CorpusPreset {
        name: "App",
        original: OriginalStats {
            rows: 2_300_000_000,
            cols: 558_000,
            nnz: 161_000_000_000,
            size: "797GB",
        },
        gen: CorpusGen::new(46_000, 11_160, 80, 70, partitions, seed),
    }
}

/// Gender (GBDT): 122M × 330K, 12.17B nnz, 145 GB → scaled; GBDT wants
/// moderately dense rows (~100 nnz).
pub fn gender(partitions: usize, seed: u64) -> SparsePreset {
    SparsePreset {
        name: "Gender",
        model: "GBDT",
        original: OriginalStats {
            rows: 122_000_000,
            cols: 330_000,
            nnz: 12_170_000_000,
            size: "145GB",
        },
        gen: SparseDatasetGen::new(24_400, 3_300, 100, partitions, seed).continuous(),
    }
}

/// Graph1 (DeepWalk): 254K vertices, 308K walks, 100 MB → ÷100.
pub fn graph1(seed: u64) -> GraphPreset {
    GraphPreset {
        name: "Graph1",
        original_vertices: 254_000,
        original_walks: 308_000,
        original_size: "100MB",
        gen: GraphGen {
            vertices: 2_540,
            edges_per_vertex: 4,
            seed,
        },
        num_walks: 3_080,
        walk_len: 8,
    }
}

/// Graph2 (DeepWalk): 115M vertices, 156M walks, 10.5 GB → much larger than
/// Graph1, used with 30 servers in Figure 9(d).
pub fn graph2(seed: u64) -> GraphPreset {
    GraphPreset {
        name: "Graph2",
        original_vertices: 115_000_000,
        original_walks: 156_000_000,
        original_size: "10.5GB",
        gen: GraphGen {
            vertices: 23_000,
            edges_per_vertex: 4,
            seed,
        },
        num_walks: 31_200,
        walk_len: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_presets_preserve_nnz_per_row_shape() {
        let k = kddb(4, 1);
        let orig_ratio = k.original.nnz as f64 / k.original.rows as f64;
        assert!((orig_ratio - k.gen.nnz_per_row as f64).abs() < 2.0);
        let c = ctr(4, 1);
        let orig_ratio = c.original.nnz as f64 / c.original.rows as f64;
        assert!((orig_ratio - c.gen.nnz_per_row as f64).abs() < 2.0);
    }

    #[test]
    fn ctr_is_much_wider_than_kddb() {
        // The property Figure 9(b) stresses: CTR's model is far wider.
        assert!(ctr(4, 1).gen.dim > 5 * kddb(4, 1).gen.dim);
    }

    #[test]
    fn graph2_is_larger_than_graph1() {
        assert!(graph2(1).gen.vertices > 5 * graph1(1).gen.vertices);
    }

    #[test]
    fn presets_generate() {
        assert!(!kddb(4, 1).gen.partition(0).is_empty());
        assert!(!pubmed(4, 1).gen.partition(0).is_empty());
        let g = graph1(1).gen.generate();
        assert_eq!(g.vertices(), 2_540);
    }
}
