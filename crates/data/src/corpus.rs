//! Topic-model corpora for LDA: documents drawn from a Dirichlet generative
//! model, so Gibbs samplers have real topic structure to recover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mix64;

/// A bag-of-words document: `(word id, count)` pairs sorted by word.
#[derive(Clone, Debug)]
pub struct Document {
    pub words: Vec<(u32, u32)>,
}

impl Document {
    pub fn tokens(&self) -> u64 {
        self.words.iter().map(|&(_, c)| c as u64).sum()
    }
}

/// Deterministic LDA corpus generator.
///
/// `true_topics` topic-word distributions are drawn from `Dirichlet(beta)`
/// (sparse, skewed — each topic concentrates on a slice of the vocabulary),
/// each document mixes a handful of topics via `Dirichlet(alpha)`.
#[derive(Clone, Debug)]
pub struct CorpusGen {
    pub docs: u64,
    pub vocab: u32,
    pub true_topics: u32,
    /// Mean tokens per document.
    pub doc_len: u32,
    pub partitions: usize,
    pub seed: u64,
}

impl CorpusGen {
    pub fn new(
        docs: u64,
        vocab: u32,
        true_topics: u32,
        doc_len: u32,
        partitions: usize,
        seed: u64,
    ) -> CorpusGen {
        CorpusGen {
            docs,
            vocab,
            true_topics,
            doc_len,
            partitions,
            seed,
        }
    }

    pub fn total_tokens(&self) -> u64 {
        self.docs * self.doc_len as u64
    }

    /// Topic `k` emits words from a contiguous vocabulary slice (with 20%
    /// off-slice mass) — a cheap, deterministic stand-in for a Dirichlet
    /// draw that still gives topics crisp identities.
    fn sample_word(&self, topic: u32, rng: &mut StdRng) -> u32 {
        let slice = (self.vocab / self.true_topics).max(1);
        if rng.gen::<f64>() < 0.8 {
            let lo = topic * slice;
            lo + rng.gen_range(0..slice).min(self.vocab - 1 - lo)
        } else {
            rng.gen_range(0..self.vocab)
        }
    }

    /// Generate partition `part` (pure in `(seed, part)`).
    pub fn partition(&self, part: usize) -> Vec<Document> {
        assert!(part < self.partitions);
        let p = self.partitions as u64;
        let lo = part as u64 * self.docs / p;
        let hi = (part as u64 + 1) * self.docs / p;
        (lo..hi).map(|d| self.document(d)).collect()
    }

    /// Generate a single document (pure in `(seed, doc)`).
    pub fn document(&self, doc: u64) -> Document {
        let mut rng = StdRng::seed_from_u64(mix64(self.seed ^ mix64(doc ^ 0x1da)));
        // Dirichlet(alpha) over topics approximated by picking 1-3 dominant
        // topics with random mixture weights.
        let k = self.true_topics;
        let n_active = rng.gen_range(1..=3.min(k));
        let active: Vec<u32> = (0..n_active).map(|_| rng.gen_range(0..k)).collect();
        let len = (self.doc_len / 2 + rng.gen_range(0..=self.doc_len)).max(1);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..len {
            let topic = active[rng.gen_range(0..active.len())];
            let w = self.sample_word(topic, &mut rng);
            *counts.entry(w).or_insert(0u32) += 1;
        }
        Document {
            words: counts.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> CorpusGen {
        CorpusGen::new(200, 1000, 10, 50, 4, 9)
    }

    #[test]
    fn partitions_cover_docs() {
        let g = gen();
        let total: u64 = (0..g.partitions).map(|p| g.partition(p).len() as u64).sum();
        assert_eq!(total, g.docs);
    }

    #[test]
    fn documents_are_deterministic_sorted_and_bounded() {
        let g = gen();
        let a = g.document(17);
        let b = g.document(17);
        assert_eq!(a.words, b.words);
        assert!(a.words.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(a.words.iter().all(|&(w, c)| w < g.vocab && c > 0));
        assert!(a.tokens() >= 1);
    }

    #[test]
    fn corpus_has_topic_structure() {
        // Words of one document should concentrate in few vocabulary slices.
        let g = gen();
        let slice = g.vocab / g.true_topics;
        let mut concentrated = 0usize;
        let docs = g.partition(0);
        for d in &docs {
            let mut slice_tokens = vec![0u64; g.true_topics as usize];
            for &(w, c) in &d.words {
                slice_tokens[((w / slice).min(g.true_topics - 1)) as usize] += c as u64;
            }
            slice_tokens.sort_unstable_by(|a, b| b.cmp(a));
            let total: u64 = slice_tokens.iter().sum();
            let top3: u64 = slice_tokens[..3].iter().sum();
            if top3 * 10 >= total * 7 {
                concentrated += 1;
            }
        }
        assert!(
            concentrated * 10 >= docs.len() * 8,
            "only {concentrated}/{} docs concentrated",
            docs.len()
        );
    }
}
