//! Sparse classification data from a logistic ground-truth model.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mix64;

/// One labelled sparse example. `features` are `(column, value)` pairs
/// sorted by column; `label` is ±1.
#[derive(Clone, Debug)]
pub struct Example {
    pub label: f64,
    pub features: Arc<Vec<(u64, f64)>>,
}

impl Example {
    /// Sparse dot with a dense weight vector.
    pub fn dot_dense(&self, w: &[f64]) -> f64 {
        self.features.iter().map(|&(j, v)| w[j as usize] * v).sum()
    }

    /// Sparse dot with weights given *aligned to this example's features*
    /// (as returned by a sparse pull of exactly these columns).
    pub fn dot_aligned(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.features.len());
        self.features
            .iter()
            .zip(w)
            .map(|(&(_, v), &wi)| wi * v)
            .sum()
    }
}

/// Deterministic generator of sparse classification data.
///
/// Feature popularity follows a power law (`column ~ zipf`), matching the
/// long-tailed ID features of CTR-style workloads; labels come from a
/// logistic model over a sparse ground-truth weight vector, so learners have
/// real signal to find and losses converge like they should.
#[derive(Clone, Debug)]
pub struct SparseDatasetGen {
    pub rows: u64,
    pub dim: u64,
    /// Average non-zeros per row.
    pub nnz_per_row: u32,
    pub partitions: usize,
    pub seed: u64,
    /// Zipf skew for column popularity (0 = uniform; ~1 = heavy head).
    pub skew: f64,
    /// Feature values: `false` → one-hot 1.0 (ID features, LR-style);
    /// `true` → uniform in (0, 1] (continuous features, GBDT-style).
    pub continuous: bool,
}

impl SparseDatasetGen {
    pub fn new(rows: u64, dim: u64, nnz_per_row: u32, partitions: usize, seed: u64) -> Self {
        SparseDatasetGen {
            rows,
            dim,
            nnz_per_row,
            partitions,
            seed,
            skew: 0.6,
            continuous: false,
        }
    }

    /// Switch to continuous feature values in (0, 1].
    pub fn continuous(mut self) -> SparseDatasetGen {
        self.continuous = true;
        self
    }

    /// Total non-zeros in the dataset (approximate; reported for Table 2).
    pub fn total_nnz(&self) -> u64 {
        self.rows * self.nnz_per_row as u64
    }

    /// Ground-truth weight of column `j`: a sparse signal (every 5th column
    /// carries weight) with deterministic magnitude in `[-2, 2]`.
    pub fn true_weight(&self, j: u64) -> f64 {
        let h = mix64(self.seed ^ mix64(j.wrapping_add(0xABCD)));
        if h.is_multiple_of(5) {
            let unit = (mix64(h) >> 11) as f64 / (1u64 << 53) as f64;
            4.0 * unit - 2.0
        } else {
            0.0
        }
    }

    /// Draw a power-law-popular column.
    fn sample_col(&self, rng: &mut StdRng) -> u64 {
        // Inverse-CDF of a truncated Pareto over [0, dim): heavier head for
        // larger skew.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let col = if self.skew <= 0.0 {
            (u * self.dim as f64) as u64
        } else {
            let exponent = 1.0 / (1.0 - self.skew.min(0.99));
            ((u.powf(exponent)) * self.dim as f64) as u64
        };
        col.min(self.dim - 1)
    }

    /// Number of rows in partition `part`.
    pub fn partition_rows(&self, part: usize) -> u64 {
        let p = self.partitions as u64;
        let part = part as u64;
        (part + 1) * self.rows / p - part * self.rows / p
    }

    /// Generate partition `part` — a pure function of `(seed, part)`.
    pub fn partition(&self, part: usize) -> Vec<Example> {
        assert!(part < self.partitions);
        let p = self.partitions as u64;
        let lo = part as u64 * self.rows / p;
        let hi = (part as u64 + 1) * self.rows / p;
        (lo..hi).map(|row| self.example(row)).collect()
    }

    /// Generate a single example (pure in `(seed, row)`).
    pub fn example(&self, row: u64) -> Example {
        let mut rng = StdRng::seed_from_u64(mix64(self.seed ^ mix64(row)));
        // Poisson-ish nnz around the mean: mean/2 .. 3*mean/2.
        let mean = self.nnz_per_row.max(1) as u64;
        let nnz = (mean / 2 + rng.gen_range(0..=mean)).max(1).min(self.dim);
        let mut cols: Vec<u64> = (0..nnz).map(|_| self.sample_col(&mut rng)).collect();
        cols.sort_unstable();
        cols.dedup();
        let features: Vec<(u64, f64)> = cols
            .into_iter()
            .map(|c| {
                let v = if self.continuous {
                    1.0 - rng.gen::<f64>()
                } else {
                    1.0
                };
                (c, v)
            })
            .collect();
        // Logistic ground truth with a little label noise.
        let margin: f64 = features.iter().map(|&(j, v)| self.true_weight(j) * v).sum();
        let p = 1.0 / (1.0 + (-margin).exp());
        let label = if rng.gen::<f64>() < p { 1.0 } else { -1.0 };
        Example {
            label,
            features: Arc::new(features),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> SparseDatasetGen {
        SparseDatasetGen::new(1000, 5000, 20, 4, 42)
    }

    #[test]
    fn partitions_cover_all_rows_exactly_once() {
        let g = gen();
        let total: u64 = (0..g.partitions).map(|p| g.partition(p).len() as u64).sum();
        assert_eq!(total, g.rows);
        let by_helper: u64 = (0..g.partitions).map(|p| g.partition_rows(p)).sum();
        assert_eq!(by_helper, g.rows);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen().partition(2);
        let b = gen().partition(2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn features_are_sorted_unique_and_in_range() {
        let g = gen();
        for ex in g.partition(0) {
            assert!(!ex.features.is_empty());
            assert!(ex.features.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(ex.features.iter().all(|&(j, _)| j < g.dim));
            assert!(ex.label == 1.0 || ex.label == -1.0);
        }
    }

    #[test]
    fn nnz_is_near_target() {
        let g = gen();
        let rows = g.partition(0);
        let avg: f64 =
            rows.iter().map(|e| e.features.len() as f64).sum::<f64>() / rows.len() as f64;
        assert!((10.0..=30.0).contains(&avg), "avg nnz {avg}");
    }

    #[test]
    fn labels_correlate_with_ground_truth() {
        // Predicting with the true weights should beat 65% accuracy — the
        // data has learnable signal.
        let g = gen();
        let mut correct = 0usize;
        let mut n = 0usize;
        for part in 0..g.partitions {
            for ex in g.partition(part) {
                let margin: f64 = ex.features.iter().map(|&(j, v)| g.true_weight(j) * v).sum();
                let pred = if margin >= 0.0 { 1.0 } else { -1.0 };
                if pred == ex.label {
                    correct += 1;
                }
                n += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.65, "accuracy {acc}");
    }

    #[test]
    fn column_popularity_is_skewed() {
        let g = gen();
        let mut head = 0u64;
        let mut total = 0u64;
        for part in 0..g.partitions {
            for ex in g.partition(part) {
                for &(j, _) in ex.features.iter() {
                    total += 1;
                    if j < g.dim / 10 {
                        head += 1;
                    }
                }
            }
        }
        let frac = head as f64 / total as f64;
        assert!(frac > 0.25, "head fraction {frac} not skewed");
    }

    #[test]
    fn dot_helpers_agree() {
        let g = gen();
        let ex = g.example(3);
        let mut w = vec![0.0; g.dim as usize];
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = (i % 7) as f64 * 0.1;
        }
        let aligned: Vec<f64> = ex.features.iter().map(|&(j, _)| w[j as usize]).collect();
        assert!((ex.dot_dense(&w) - ex.dot_aligned(&aligned)).abs() < 1e-12);
    }
}
