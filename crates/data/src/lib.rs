//! # ps2-data — synthetic workloads and dataset presets
//!
//! The paper evaluates on three public datasets (KDDB, KDD12, PubMED) and
//! five Tencent-internal ones (CTR, App, Gender, Graph1, Graph2) that are
//! not available. This crate substitutes **seeded synthetic generators**
//! whose row/column/sparsity *ratios* mirror Table 2 at laptop scale:
//!
//! * [`SparseDatasetGen`] — sparse classification data from a logistic
//!   ground-truth model with power-law feature popularity (the shape of
//!   CTR-style data); drives LR, SVM and GBDT.
//! * [`GraphGen`] + [`RandomWalks`] — preferential-attachment graphs and the
//!   random-walk corpus DeepWalk trains on (the paper receives pre-sampled
//!   walks from the business unit; so do we, from the generator).
//! * [`CorpusGen`] — documents drawn from a Dirichlet topic model, for LDA.
//! * [`presets`] — the Table 2 datasets scaled down, each knowing its
//!   original statistics so the benchmark harness can print both.
//! * [`libsvm`] — read/write the interchange format the public datasets
//!   ship in.
//!
//! Everything is a deterministic function of `(seed, partition)` — the
//! property lineage-based recovery in `ps2-dataflow` relies on.

mod corpus;
mod graph;
pub mod libsvm;
pub mod presets;
mod sparse;

pub use corpus::{CorpusGen, Document};
pub use graph::{Graph, GraphGen, RandomWalks, SkipGramPair};
pub use sparse::{Example, SparseDatasetGen};

/// splitmix64 — the crate's deterministic scalar hash.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
