//! libsvm interchange format: `label idx:val idx:val ...` (1-based indices
//! in files, 0-based in memory), the format KDDB/KDD12 ship in.

use std::io::{BufRead, BufWriter, Write};
use std::sync::Arc;

use crate::sparse::Example;

/// Parse one libsvm line. Returns `None` for blank/comment lines.
pub fn parse_line(line: &str) -> Option<Result<Example, String>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let mut parts = line.split_ascii_whitespace();
    let label_tok = parts.next()?;
    let label: f64 = match label_tok.parse() {
        Ok(v) => v,
        Err(e) => return Some(Err(format!("bad label '{label_tok}': {e}"))),
    };
    let label = if label > 0.0 { 1.0 } else { -1.0 };
    let mut features = Vec::new();
    for tok in parts {
        let Some((idx, val)) = tok.split_once(':') else {
            return Some(Err(format!("bad feature token '{tok}'")));
        };
        let idx: u64 = match idx.parse::<u64>() {
            Ok(0) => return Some(Err("libsvm indices are 1-based; got 0".into())),
            Ok(v) => v - 1,
            Err(e) => return Some(Err(format!("bad index '{idx}': {e}"))),
        };
        let val: f64 = match val.parse() {
            Ok(v) => v,
            Err(e) => return Some(Err(format!("bad value '{val}': {e}"))),
        };
        features.push((idx, val));
    }
    features.sort_unstable_by_key(|&(j, _)| j);
    features.dedup_by_key(|&mut (j, _)| j);
    Some(Ok(Example {
        label,
        features: Arc::new(features),
    }))
}

/// Read a whole libsvm stream.
pub fn read<R: BufRead>(reader: R) -> Result<Vec<Example>, String> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("io error at line {}: {e}", lineno + 1))?;
        if let Some(parsed) = parse_line(&line) {
            out.push(parsed.map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
    }
    Ok(out)
}

/// Write examples in libsvm format.
pub fn write<W: Write>(writer: W, examples: &[Example]) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for ex in examples {
        write!(w, "{}", if ex.label > 0.0 { 1 } else { -1 })?;
        for &(j, v) in ex.features.iter() {
            write!(w, " {}:{}", j + 1, v)?;
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "1 1:0.5 7:2\n-1 3:1\n\n# comment\n+1 2:4 2:9\n";
        let examples = read(text.as_bytes()).unwrap();
        assert_eq!(examples.len(), 3);
        assert_eq!(examples[0].label, 1.0);
        assert_eq!(*examples[0].features, vec![(0, 0.5), (6, 2.0)]);
        assert_eq!(examples[1].label, -1.0);
        // duplicate index deduped
        assert_eq!(examples[2].features.len(), 1);

        let mut buf = Vec::new();
        write(&mut buf, &examples).unwrap();
        let again = read(buf.as_slice()).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(*again[0].features, *examples[0].features);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        assert!(read("1 x:1\n".as_bytes()).unwrap_err().contains("line 1"));
        assert!(read("1 0:1\n".as_bytes()).unwrap_err().contains("1-based"));
        assert!(read("abc 1:1\n".as_bytes())
            .unwrap_err()
            .contains("bad label"));
    }

    #[test]
    fn labels_are_normalized_to_plus_minus_one() {
        let examples = read("0 1:1\n2 1:1\n".as_bytes()).unwrap();
        assert_eq!(examples[0].label, -1.0);
        assert_eq!(examples[1].label, 1.0);
    }
}
