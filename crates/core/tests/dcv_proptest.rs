//! Property-based tests on DCV invariants.

use std::sync::Arc;

use proptest::prelude::*;
use ps2_core::{run_ps2, ClusterSpec, ZipSegs};

fn spec(s: usize) -> ClusterSpec {
    ClusterSpec {
        workers: 2,
        servers: s,
        ..ClusterSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// zip over co-located rows applies exactly the same function the local
    /// reference applies, for any server count — co-location is invisible
    /// to semantics.
    #[test]
    fn zip_is_semantically_local(
        servers in 1usize..6,
        values in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..120),
        scale in -2.0f64..2.0
    ) {
        let dim = values.len() as u64;
        let (got, expect) = run_ps2(spec(servers), 3, move |ctx, ps2| {
            let w = ps2.dense_dcv(ctx, dim, 2);
            let g = w.derive(ctx);
            let a: Vec<f64> = values.iter().map(|&(x, _)| x).collect();
            let b: Vec<f64> = values.iter().map(|&(_, y)| y).collect();
            w.add_dense(ctx, &a);
            g.add_dense(ctx, &b);
            w.zip(&[&g]).map_partitions(
                ctx,
                Arc::new(move |zs: &mut ZipSegs<'_>| {
                    let (wseg, rest) = zs.segs.split_first_mut().unwrap();
                    let gseg = &rest[0];
                    for i in 0..wseg.len() {
                        wseg[i] = wseg[i] * scale + gseg[i] * gseg[i];
                    }
                }),
                3,
            );
            let expect: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x * scale + y * y).collect();
            (w.pull(ctx), expect)
        }).0;
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() <= 1e-9 * (1.0 + e.abs()), "{g} vs {e}");
        }
    }

    /// The zip's `lo` offset really is the global column of each segment:
    /// writing `lo + i` yields the ramp 0..dim.
    #[test]
    fn zip_lo_offsets_are_global_columns(servers in 1usize..6, dim in 1u64..500) {
        let (got, _) = run_ps2(spec(servers), 5, move |ctx, ps2| {
            let w = ps2.dense_dcv(ctx, dim, 1);
            w.zip(&[]).map_partitions(
                ctx,
                Arc::new(|zs: &mut ZipSegs<'_>| {
                    let lo = zs.lo;
                    for (i, v) in zs.segs[0].iter_mut().enumerate() {
                        *v = (lo + i as u64) as f64;
                    }
                }),
                1,
            );
            w.pull(ctx)
        });
        let expect: Vec<f64> = (0..dim).map(|i| i as f64).collect();
        prop_assert_eq!(got, expect);
    }

    /// Sparse pulls return exactly the dense values at those indices.
    #[test]
    fn pull_indices_matches_dense_pull(
        servers in 1usize..6,
        dim in 10u64..2_000,
        idx in prop::collection::btree_set(0u64..2_000, 1..30)
    ) {
        let cols: Vec<u64> = idx.into_iter().filter(|&j| j < dim).collect();
        prop_assume!(!cols.is_empty());
        let (sparse, dense) = run_ps2(spec(servers), 7, move |ctx, ps2| {
            let v = ps2.dense_dcv_init(
                ctx,
                dim,
                1,
                ps2_core::InitKind::Uniform { lo: -1.0, hi: 1.0, seed: 5 },
            );
            (v.pull_indices(ctx, &cols), (v.pull(ctx), cols))
        }).0;
        let (full, cols) = dense;
        let expect: Vec<f64> = cols.iter().map(|&j| full[j as usize]).collect();
        prop_assert_eq!(sparse, expect);
    }

    /// pull_range agrees with the dense pull on any subrange.
    #[test]
    fn pull_range_matches_dense_pull(servers in 1usize..6, dim in 2u64..1_000, a in 0u64..1_000, b in 0u64..1_000) {
        let lo = a.min(b) % dim;
        let hi = (a.max(b) % dim).max(lo);
        let (ranged, full) = run_ps2(spec(servers), 9, move |ctx, ps2| {
            let v = ps2.dense_dcv_init(
                ctx,
                dim,
                1,
                ps2_core::InitKind::Uniform { lo: 0.0, hi: 1.0, seed: 8 },
            );
            (v.pull_range(ctx, lo, hi), v.pull(ctx))
        }).0;
        prop_assert_eq!(&ranged[..], &full[lo as usize..hi as usize]);
    }
}
