//! Behavioural tests for the DCV abstraction: the paper's Table 1 operators,
//! co-location semantics, and worker-side usage from RDD tasks.

use std::sync::Arc;

use ps2_core::{run_ps2, ClusterSpec, Dcv, ElemOp, SimCtx, ZipSegs};

fn spec(w: usize, s: usize) -> ClusterSpec {
    ClusterSpec {
        workers: w,
        servers: s,
        ..ClusterSpec::default()
    }
}

#[test]
fn derive_yields_colocated_rows_until_exhausted() {
    let ((), _) = run_ps2(spec(2, 3), 1, |ctx, ps2| {
        let a = ps2.dense_dcv(ctx, 100, 3);
        let b = a.derive(ctx);
        let c = b.derive(ctx);
        assert!(a.colocated_with(&b) && a.colocated_with(&c));
        assert_eq!((a.row(), b.row(), c.row()), (0, 1, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = c.derive(ctx);
        }));
        assert!(result.is_err(), "4th derive of dense(_, 3) must panic");
    });
}

#[test]
fn row_ops_pull_push_and_aggregate() {
    let (got, _) = run_ps2(spec(2, 4), 1, |ctx, ps2| {
        let v = ps2.dense_dcv(ctx, 200, 1);
        v.add_sparse(ctx, &[(0, 3.0), (100, 4.0)]);
        let dense: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        v.add_dense(ctx, &dense);
        (
            v.sum(ctx),
            v.nnz(ctx),
            v.norm2(ctx),
            v.pull_indices(ctx, &[0, 1, 100]),
            v.pull(ctx).len(),
        )
    });
    assert_eq!(got.0, 3.0 + 4.0 + 100.0);
    assert_eq!(got.1, 100); // evens, incl. 0 and 100 which also have sparse adds
    assert!(got.2 > 0.0);
    assert_eq!(got.3, vec![4.0, 0.0, 5.0]);
    assert_eq!(got.4, 200);
}

#[test]
fn adam_update_via_zip_matches_scalar_reference() {
    // One Adam step computed (a) server-side via zip and (b) locally.
    let dim = 512u64;
    let (beta1, beta2, eta, eps) = (0.9, 0.999, 0.1, 1e-8);
    let (got, _) = run_ps2(spec(2, 4), 1, move |ctx, ps2| {
        let w = ps2.dense_dcv(ctx, dim, 4);
        let s = w.derive(ctx);
        let v = w.derive(ctx);
        let g = w.derive(ctx);
        w.fill(ctx, 1.0);
        let grads: Vec<f64> = (0..dim).map(|i| (i as f64 / dim as f64) - 0.5).collect();
        g.add_dense(ctx, &grads);
        let t = 1i32;
        w.zip(&[&s, &v, &g]).map_partitions(
            ctx,
            Arc::new(move |zs: &mut ZipSegs<'_>| {
                let [w, s, v, g] = &mut zs.segs[..] else {
                    panic!("expected 4 segments")
                };
                for i in 0..w.len() {
                    s[i] = beta1 * s[i] + (1.0 - beta1) * g[i] * g[i];
                    v[i] = beta2 * v[i] + (1.0 - beta2) * g[i];
                    let s_hat = s[i] / (1.0 - beta1.powi(t));
                    let v_hat = v[i] / (1.0 - beta2.powi(t));
                    w[i] -= eta * v_hat / (s_hat.sqrt() + eps);
                }
            }),
            10,
        );
        (w.pull(ctx), grads)
    });
    let (w_ps, grads) = got;
    for (i, g) in grads.iter().enumerate() {
        let s = (1.0 - beta2) * g; // v in reference naming
        let sq = (1.0 - beta1) * g * g;
        let s_hat = sq / (1.0 - beta1);
        let v_hat = s / (1.0 - beta2);
        let expect = 1.0 - eta * v_hat / (s_hat.sqrt() + eps);
        assert!(
            (w_ps[i] - expect).abs() < 1e-9,
            "dim {i}: {} vs {expect}",
            w_ps[i]
        );
    }
}

#[test]
fn elementwise_assign_ops() {
    let (got, _) = run_ps2(spec(2, 3), 1, |ctx, ps2| {
        let a = ps2.dense_dcv(ctx, 60, 4);
        let b = a.derive(ctx).filled(ctx, 6.0);
        let c = a.derive(ctx).filled(ctx, 3.0);
        let d = a.derive(ctx);
        a.fill(ctx, 1.0);
        d.assign_add(ctx, &b, &c);
        let add = d.sum(ctx);
        d.assign_sub(ctx, &b, &c);
        let sub = d.sum(ctx);
        d.assign_mul(ctx, &b, &c);
        let mul = d.sum(ctx);
        d.assign_div(ctx, &b, &c);
        let div = d.sum(ctx);
        d.copy_from(ctx, &b);
        d.scale(ctx, 0.5);
        let half = d.sum(ctx);
        (add, sub, mul, div, half)
    });
    assert_eq!(got.0, 9.0 * 60.0);
    assert_eq!(got.1, 3.0 * 60.0);
    assert_eq!(got.2, 18.0 * 60.0);
    assert_eq!(got.3, 2.0 * 60.0);
    assert_eq!(got.4, 3.0 * 60.0);
}

#[test]
fn dot_and_iaxpy_between_derived_vectors() {
    let (got, _) = run_ps2(spec(2, 4), 1, |ctx, ps2| {
        let u = ps2.dense_dcv(ctx, 128, 2);
        let v = u.derive(ctx);
        u.fill(ctx, 0.5);
        v.fill(ctx, 4.0);
        let d = u.dot(ctx, &v);
        u.iaxpy(ctx, &v, 0.25);
        (d, u.pull(ctx))
    });
    assert_eq!(got.0, 0.5 * 4.0 * 128.0);
    assert!(got.1.iter().all(|&x| (x - 1.5).abs() < 1e-12));
}

#[test]
fn zip_map_reduce_finds_max_gain() {
    let (got, _) = run_ps2(spec(2, 4), 1, |ctx, ps2| {
        let grad = ps2.dense_dcv(ctx, 100, 2);
        let hess = grad.derive(ctx).filled(ctx, 2.0);
        grad.add_sparse(ctx, &[(42, 10.0), (7, 3.0)]);
        // gain(i) = g[i]^2 / h[i]; max at i=42: 100/2 = 50.
        grad.zip(&[&hess]).map_reduce(
            ctx,
            Arc::new(|segs: &[&[f64]], _lo| {
                segs[0]
                    .iter()
                    .zip(segs[1])
                    .map(|(g, h)| g * g / h)
                    .fold(f64::NEG_INFINITY, f64::max)
            }),
            3,
            f64::NEG_INFINITY,
            f64::max,
        )
    });
    assert_eq!(got, 50.0);
}

#[test]
fn misaligned_dcvs_are_correct_but_slower() {
    let dim = 300_000u64;
    let (got, _) = run_ps2(spec(2, 4), 1, move |ctx, ps2| {
        let a = ps2.dense_dcv(ctx, dim, 2);
        let a2 = a.derive(ctx).filled(ctx, 2.0);
        a.fill(ctx, 1.0);
        let b = ps2.dense_dcv_misaligned(ctx, dim, 1, 1);
        b.fill(ctx, 2.0);
        assert!(!a.colocated_with(&b));

        let t0 = ctx.now();
        let fast = a.dot(ctx, &a2); // co-located
        let t1 = ctx.now();
        let slow = a.dot(ctx, &b); // misaligned
        let t2 = ctx.now();
        (fast, slow, (t1 - t0), (t2 - t1))
    });
    assert_eq!(got.0, 2.0 * dim as f64);
    assert_eq!(got.1, 2.0 * dim as f64);
    assert!(
        got.3.as_nanos() > 2 * got.2.as_nanos(),
        "misaligned dot must pay shuffle: {:?} vs {:?}",
        got.2,
        got.3
    );
}

#[test]
fn workers_use_dcvs_inside_rdd_tasks() {
    // The Figure 3 training-loop skeleton: workers pull the model, compute,
    // and push gradients from inside map_partitions; the barrier is the
    // action itself.
    let (got, _) = run_ps2(spec(4, 4), 1, |ctx, ps2| {
        let w: Dcv = ps2.dense_dcv(ctx, 64, 2);
        let g = w.derive(ctx);
        w.fill(ctx, 2.0);
        let data = ps2.spark.source(8, |part, _w| vec![part as u64 + 1]);
        let gg = g.clone();
        let ww = w.clone();
        ps2.spark
            .for_each_partition(ctx, &data, move |items, wctx| {
                let model = ww.pull(wctx.sim);
                assert_eq!(model[0], 2.0);
                let x = items[0] as f64;
                gg.add_sparse(wctx.sim, &[(0, x)]);
            })
            .unwrap();
        g.pull_indices(ctx, &[0])
    });
    // Sum over partitions of (part+1) = 1+2+...+8 = 36.
    assert_eq!(got, vec![36.0]);
}

#[test]
fn block_ops_roundtrip_on_shared_matrix() {
    let (got, _) = run_ps2(spec(2, 3), 1, |ctx, ps2| {
        let base = ps2.dense_dcv(ctx, 50, 4);
        let rows = [0u32, 1, 2, 3];
        base.push_block(ctx, &rows, &[(10, vec![1.0, 2.0, 3.0, 4.0])]);
        base.pull_block(ctx, &rows, &[9, 10, 11])
    });
    assert_eq!(got[0], vec![0.0; 4]);
    assert_eq!(got[1], vec![1.0, 2.0, 3.0, 4.0]);
    assert_eq!(got[2], vec![0.0; 4]);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (sum, report) = run_ps2(spec(3, 3), 77, |ctx, ps2| {
            let v = ps2.dense_dcv(ctx, 1000, 2);
            let u = v.derive(ctx);
            v.fill(ctx, 1.0);
            u.fill(ctx, 2.0);
            for _ in 0..5 {
                v.iaxpy(ctx, &u, 0.1);
            }
            v.dot(ctx, &u)
        });
        (sum, report.virtual_time, report.total_bytes)
    };
    assert_eq!(run(), run());
}

/// Regression guard: an op on a DCV must not disturb sibling rows.
#[test]
fn ops_are_row_isolated() {
    let (got, _) = run_ps2(spec(2, 4), 1, |ctx, ps2| {
        let a = ps2.dense_dcv(ctx, 40, 3);
        let b = a.derive(ctx).filled(ctx, 5.0);
        let c = a.derive(ctx).filled(ctx, 7.0);
        a.fill(ctx, 1.0);
        a.scale(ctx, 3.0);
        b.iaxpy(ctx, &c, 1.0);
        b.assign_elem(ctx, &b, &c, ElemOp::Sub);
        (a.sum(ctx), b.sum(ctx), c.sum(ctx))
    });
    assert_eq!(got.0, 120.0);
    assert_eq!(got.1, 200.0); // (5+7) - 7 = 5 per elem
    assert_eq!(got.2, 280.0);
}

/// SimCtx type is exposed for custom topologies.
#[allow(dead_code)]
fn type_check(_ctx: &mut SimCtx) {}
