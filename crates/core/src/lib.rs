//! # ps2-core — the PS2 system: DCVs on Spark + parameter servers
//!
//! This crate is the paper's primary contribution: it welds the dataflow
//! engine (`ps2-dataflow`) and the parameter servers (`ps2-ps`) into one
//! system ([`Ps2Context`]) and exposes the **Dimension Co-located Vector**
//! ([`Dcv`]) with the operator set of the paper's Table 1:
//!
//! | category | operators |
//! |---|---|
//! | row access | `pull`, `pull_indices`, `push`, `add`, `sum`, `nnz`, `norm2` |
//! | column access | `axpy`, `iaxpy`, `dot`, `copy_from`, `assign_add/sub/mul/div`, `zip`, `zip_map` |
//! | creation | `dense`, `derive`, `fill`, `zero` |
//!
//! A `dense(dim, k)` call allocates a raw `k × dim` matrix, column-partitioned
//! across the PS-servers; the returned DCV is its row 0 and `derive` hands
//! out the pre-allocated remaining rows. Derived DCVs share the partition
//! plan, so the same dimensions of all of them sit on the same server —
//! element-wise column ops then run entirely server-side, with only scalars
//! crossing the network (paper §4).
//!
//! ```
//! use ps2_core::{ClusterSpec, run_ps2};
//!
//! let spec = ClusterSpec { workers: 4, servers: 4, ..ClusterSpec::default() };
//! let (result, report) = run_ps2(spec, 42, |ctx, ps2| {
//!     // The paper's Figure 3 allocation pattern:
//!     let weight = ps2.dense_dcv(ctx, 1_000, 4);
//!     let velocity = weight.derive(ctx).filled(ctx, 0.0);
//!     let gradient = weight.derive(ctx);
//!     gradient.add_sparse(ctx, &[(7, 2.0), (500, -1.0)]);
//!     // Server-side: velocity = 0.9*velocity + gradient (axpy then swap
//!     // roles), here just demonstrate dot:
//!     weight.iaxpy(ctx, &gradient, -0.1);
//!     (weight.dot(ctx, &velocity), weight.nnz(ctx))
//! });
//! assert_eq!(result.0, 0.0);
//! assert_eq!(result.1, 2);
//! assert!(report.virtual_time.as_secs_f64() > 0.0);
//! ```

mod context;
mod dcv;
mod harness;

pub use context::{deploy, ClusterSpec, Deployment, Ps2Context};
pub use dcv::{Dcv, ZipBuilder};
pub use harness::{run_ps2, run_ps2_with};

// Re-export the pieces users need alongside the context.
pub use ps2_dataflow::{Broadcast, FailureConfig, Rdd, SparkContext, WorkCtx};
pub use ps2_ps::{
    AggKind, BatchResult, ElemOp, InitKind, MatrixHandle, Partitioning, PsBatch, PsConfig,
    PsMaster, ZipArgmaxFn, ZipMapFn, ZipMutFn, ZipSegs,
};
pub use ps2_simnet::{
    ComputeConfig, MetricsSnapshot, NetConfig, OpRow, ProcId, RunReport, SimBuilder, SimConfig,
    SimCtx, SimReport, SimRuntime, SimTime, VtHistogram,
};
