//! One-call harness: deploy a cluster, run a driver closure, return its
//! result plus the simulation report.

use ps2_simnet::{SimBuilder, SimCtx, SimReport};

use crate::context::{deploy, ClusterSpec, Ps2Context};

/// Deploy `spec`, run `f` as the coordinator, and return `(f's result,
/// simulation report)`. The entire cluster is simulated deterministically
/// under `seed`.
///
/// This is the entry point used by the examples and the benchmark harness;
/// library users composing multiple drivers or custom topologies can call
/// [`crate::context::deploy`] and `SimRuntime` directly instead.
pub fn run_ps2<T, F>(spec: ClusterSpec, seed: u64, f: F) -> (T, SimReport)
where
    T: Send + 'static,
    F: FnOnce(&mut SimCtx, &mut Ps2Context) -> T + Send + 'static,
{
    run_ps2_with(SimBuilder::new().seed(seed), spec, f)
}

/// [`run_ps2`] with a custom simulator configuration (network, compute
/// model).
pub fn run_ps2_with<T, F>(builder: SimBuilder, spec: ClusterSpec, f: F) -> (T, SimReport)
where
    T: Send + 'static,
    F: FnOnce(&mut SimCtx, &mut Ps2Context) -> T + Send + 'static,
{
    let mut sim = builder.build();
    let deployment = deploy(&mut sim, &spec);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut ps2 = Ps2Context::new(deployment);
        f(ctx, &mut ps2)
    });
    let report = sim.run().expect("simulation failed");
    (out.take(), report)
}
