//! The integrated PS2 context: one coordinator driving Spark executors and
//! PS-servers.

use ps2_dataflow::{deploy_executors, SparkContext};
use ps2_ps::{deploy_ps, InitKind, Partitioning, PsConfig, PsMaster};
use ps2_simnet::{ProcId, SimCtx, SimRuntime};

use crate::dcv::Dcv;

/// Cluster shape for a PS2 deployment (paper §6: "same number of
/// workers/servers" per experiment).
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    pub workers: usize,
    pub servers: usize,
    pub ps: PsConfig,
    /// Checkpoint-storage disk bandwidth (bytes/s).
    pub disk_bytes_per_sec: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            workers: 4,
            servers: 4,
            ps: PsConfig::default(),
            disk_bytes_per_sec: 500e6,
        }
    }
}

/// Process ids of a deployed cluster, to be captured by the driver closure.
#[derive(Clone, Debug)]
pub struct Deployment {
    pub executors: Vec<ProcId>,
    pub servers: Vec<ProcId>,
    pub storage: ProcId,
    pub ps_config: PsConfig,
}

/// Launch executors, PS-servers and checkpoint storage on a runtime being
/// assembled. The paper's "two separate applications" — the PS fleet is
/// deployed independently of Spark, then bridged by the coordinator.
pub fn deploy(sim: &mut SimRuntime, spec: &ClusterSpec) -> Deployment {
    let executors = deploy_executors(sim, spec.workers);
    let (servers, storage) = deploy_ps(sim, spec.servers, spec.disk_bytes_per_sec);
    Deployment {
        executors,
        servers,
        storage,
        ps_config: spec.ps.clone(),
    }
}

/// The coordinator's handle to the whole system: the Spark driver side
/// ([`SparkContext`]) plus the PS-master. Lives inside the driver process.
pub struct Ps2Context {
    pub spark: SparkContext,
    pub ps: PsMaster,
}

impl Ps2Context {
    pub fn new(deployment: Deployment) -> Ps2Context {
        let mut spark = SparkContext::new(deployment.executors);
        let ps = PsMaster::new(deployment.servers, deployment.storage, deployment.ps_config);
        // Bridge the two applications' failure handling: when a job's tasks
        // stall, the scheduler heartbeats the PS fleet and triggers
        // dead-server recovery mid-run instead of deadlocking on workers
        // blocked against a dead server.
        spark.register_probe(ps.fleet());
        Ps2Context { spark, ps }
    }

    /// `DCV.dense(dim, k)` (paper Figure 3, line 4): allocate a raw
    /// `k × dim` matrix and return its first row as a DCV. The remaining
    /// `k - 1` rows are pre-allocated for [`Dcv::derive`].
    pub fn dense_dcv(&mut self, ctx: &mut SimCtx, dim: u64, k: u32) -> Dcv {
        self.dense_dcv_init(ctx, dim, k, InitKind::Zero)
    }

    /// `dense` with explicit initialization (e.g. random embeddings).
    pub fn dense_dcv_init(&mut self, ctx: &mut SimCtx, dim: u64, k: u32, init: InitKind) -> Dcv {
        let handle = self
            .ps
            .create_matrix(ctx, dim, k, Partitioning::Column, init);
        Dcv::first_of(handle)
    }

    /// A deliberately *misaligned* dense DCV — created with a rotated
    /// partition plan, as if by an independent `DCV.dense` call (the
    /// "inefficient writing" of Figure 4). Ops between this and a normal
    /// DCV pay server↔server shuffles.
    pub fn dense_dcv_misaligned(
        &mut self,
        ctx: &mut SimCtx,
        dim: u64,
        k: u32,
        rotation: usize,
    ) -> Dcv {
        let handle = self.ps.create_matrix(
            ctx,
            dim,
            k,
            Partitioning::ColumnRotated(rotation),
            InitKind::Zero,
        );
        Dcv::first_of(handle)
    }
}
