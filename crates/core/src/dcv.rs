//! The Dimension Co-located Vector.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use ps2_ps::{AggKind, ElemOp, MatrixHandle, PsBatch, ZipArgmaxFn, ZipMapFn, ZipMutFn};
use ps2_simnet::SimCtx;

/// A distributed vector on the parameter servers (paper §4).
///
/// A DCV is one row of a column-partitioned raw matrix. DCVs
/// [`derive`](Dcv::derive)d from the same `dense` allocation share the
/// partition plan, so their equal dimensions are co-located on the same
/// server and all column-access operators run server-side without
/// server↔server communication.
///
/// Cloning is cheap and `Dcv` is `Send + Sync`, so handles can be captured
/// by RDD task closures — that is how workers pull models and push gradients
/// from inside a `map_partitions`.
#[derive(Clone)]
pub struct Dcv {
    handle: MatrixHandle,
    row: u32,
    /// Next free row of the raw matrix, shared among all DCVs derived from
    /// the same allocation.
    next_row: Arc<AtomicU32>,
}

impl Dcv {
    pub(crate) fn first_of(handle: MatrixHandle) -> Dcv {
        Dcv {
            handle,
            row: 0,
            next_row: Arc::new(AtomicU32::new(1)),
        }
    }

    /// The underlying PS matrix handle.
    pub fn matrix(&self) -> &MatrixHandle {
        &self.handle
    }

    /// Row of the raw matrix this DCV occupies.
    pub fn row(&self) -> u32 {
        self.row
    }

    /// Vector dimension.
    pub fn dim(&self) -> u64 {
        self.handle.dim()
    }

    /// Whether column ops between the two DCVs are free of cross-server
    /// traffic.
    pub fn colocated_with(&self, other: &Dcv) -> bool {
        self.handle.id == other.handle.id || self.handle.colocated_with(&other.handle)
    }

    // ---- creation ops -----------------------------------------------------

    /// `DCV.derive(v)` (paper §4.3): hand out the next pre-allocated row of
    /// the raw matrix. The derived DCV is guaranteed co-located with `self`.
    ///
    /// Panics when the raw matrix is exhausted — allocate a larger `k` in
    /// `dense(dim, k)`.
    pub fn derive(&self, _ctx: &mut SimCtx) -> Dcv {
        let row = self.next_row.fetch_add(1, Ordering::Relaxed);
        assert!(
            row < self.handle.rows(),
            "raw matrix exhausted: dense(dim, {}) rows all derived; \
             allocate more rows up front",
            self.handle.rows()
        );
        Dcv {
            handle: self.handle.clone(),
            row,
            next_row: Arc::clone(&self.next_row),
        }
    }

    /// Enable message compression for this handle: parameters travel as
    /// 4-byte floats (the paper's LDA engineering, §6.3.3). Derived DCVs
    /// inherit the setting.
    pub fn compressed(mut self) -> Dcv {
        self.handle.value_bytes = 4;
        self
    }

    /// `fill(value)` returning self — the paper's
    /// `DCV.derive(w).fill(0.0)` chaining style.
    pub fn filled(self, ctx: &mut SimCtx, value: f64) -> Dcv {
        self.fill(ctx, value);
        self
    }

    // ---- row access ops (pull / push / aggregations) ------------------------

    /// Pull the full dense vector, gathering from all servers in parallel.
    pub fn pull(&self, ctx: &mut SimCtx) -> Vec<f64> {
        self.handle.pull_row(ctx, self.row)
    }

    /// Sparse pull of the given (sorted) indices — only the needed
    /// parameters travel, the paper's advantage over full-model pulls.
    pub fn pull_indices(&self, ctx: &mut SimCtx, indices: &[u64]) -> Vec<f64> {
        self.handle.pull_cols(ctx, self.row, indices)
    }

    /// Ranged pull of contiguous columns `[lo, hi)` — the dense slice
    /// access the pull/push-only baselines use when workers split the model
    /// update among themselves.
    pub fn pull_range(&self, ctx: &mut SimCtx, lo: u64, hi: u64) -> Vec<f64> {
        self.handle.pull_range(ctx, self.row, lo, hi)
    }

    /// Dense additive push (`add` in Figure 3: workers pushing gradients).
    pub fn add_dense(&self, ctx: &mut SimCtx, values: &[f64]) {
        self.handle.push_dense(ctx, self.row, values);
    }

    /// Dense additive push of the contiguous slice starting at `lo`.
    pub fn add_dense_range(&self, ctx: &mut SimCtx, lo: u64, values: &[f64]) {
        self.handle.push_dense_range(ctx, self.row, lo, values);
    }

    /// Sparse additive push of `(index, delta)` pairs (sorted on your
    /// behalf if needed — addition is order-insensitive).
    pub fn add_sparse(&self, ctx: &mut SimCtx, pairs: &[(u64, f64)]) {
        if pairs.windows(2).all(|w| w[0].0 < w[1].0) {
            self.handle.push_sparse(ctx, self.row, pairs);
        } else {
            let mut sorted = pairs.to_vec();
            sorted.sort_by_key(|&(i, _)| i);
            // Merge duplicate indices (strictly increasing required below).
            sorted.dedup_by(|b, a| {
                if a.0 == b.0 {
                    a.1 += b.1;
                    true
                } else {
                    false
                }
            });
            self.handle.push_sparse(ctx, self.row, &sorted);
        }
    }

    pub fn sum(&self, ctx: &mut SimCtx) -> f64 {
        self.handle.agg(ctx, self.row, AggKind::Sum)
    }

    pub fn nnz(&self, ctx: &mut SimCtx) -> u64 {
        self.handle.agg(ctx, self.row, AggKind::Nnz) as u64
    }

    pub fn norm2(&self, ctx: &mut SimCtx) -> f64 {
        self.handle.agg(ctx, self.row, AggKind::Norm2Sq).sqrt()
    }

    pub fn max(&self, ctx: &mut SimCtx) -> f64 {
        self.handle.agg(ctx, self.row, AggKind::Max)
    }

    // ---- column access ops (server-side) --------------------------------------

    /// Server-side dot product. Co-located pairs cost only one scalar per
    /// server; misaligned pairs pay server↔server segment fetches (the
    /// Figure 4 penalty) while still returning the right answer.
    pub fn dot(&self, ctx: &mut SimCtx, other: &Dcv) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dot of mismatched dimensions");
        if self.handle.id == other.handle.id {
            self.handle.dot(ctx, self.row, other.row)
        } else {
            self.handle
                .cross_dot(ctx, &other.handle, self.row, other.row)
        }
    }

    /// `self += alpha * other`, server-side (`iaxpy` of Figure 6).
    pub fn iaxpy(&self, ctx: &mut SimCtx, other: &Dcv, alpha: f64) {
        assert_eq!(self.dim(), other.dim());
        if self.handle.id == other.handle.id {
            self.handle.axpy(ctx, self.row, other.row, alpha);
        } else {
            // Misaligned fallback: scale-free pull/push through this client.
            let vals = other.pull(ctx);
            let scaled: Vec<f64> = vals.iter().map(|v| v * alpha).collect();
            self.add_dense(ctx, &scaled);
        }
    }

    /// `self = a op b`, element-wise server-side; all three DCVs must come
    /// from the same raw matrix (use `derive`).
    pub fn assign_elem(&self, ctx: &mut SimCtx, a: &Dcv, b: &Dcv, op: ElemOp) {
        assert!(
            self.handle.id == a.handle.id && self.handle.id == b.handle.id,
            "assign_elem requires DCVs derived from the same dense() allocation"
        );
        self.handle.elem(ctx, self.row, a.row, b.row, op);
    }

    pub fn assign_add(&self, ctx: &mut SimCtx, a: &Dcv, b: &Dcv) {
        self.assign_elem(ctx, a, b, ElemOp::Add);
    }

    pub fn assign_sub(&self, ctx: &mut SimCtx, a: &Dcv, b: &Dcv) {
        self.assign_elem(ctx, a, b, ElemOp::Sub);
    }

    pub fn assign_mul(&self, ctx: &mut SimCtx, a: &Dcv, b: &Dcv) {
        self.assign_elem(ctx, a, b, ElemOp::Mul);
    }

    pub fn assign_div(&self, ctx: &mut SimCtx, a: &Dcv, b: &Dcv) {
        self.assign_elem(ctx, a, b, ElemOp::Div);
    }

    /// `self = other` (element-wise copy). Same-matrix pairs run
    /// server-side; misaligned pairs pay cross-server movement.
    pub fn copy_from(&self, ctx: &mut SimCtx, other: &Dcv) {
        if self.handle.id == other.handle.id {
            // dst = other + 0: zero self then add.
            self.zero(ctx);
            self.handle.axpy(ctx, self.row, other.row, 1.0);
        } else {
            self.zero(ctx);
            self.handle
                .cross_elem(ctx, &other.handle, self.row, other.row, ElemOp::Add);
        }
    }

    /// `self *= alpha`, server-side.
    pub fn scale(&self, ctx: &mut SimCtx, alpha: f64) {
        self.handle.scale(ctx, self.row, alpha);
    }

    pub fn fill(&self, ctx: &mut SimCtx, value: f64) {
        self.handle.fill(ctx, self.row, value);
    }

    pub fn zero(&self, ctx: &mut SimCtx) {
        self.handle.zero(ctx, self.row);
    }

    /// Enqueue a [`Dcv::fill`] into `batch`: it shares the batch's one
    /// envelope per server at [`PsBatch::flush`] instead of paying its own
    /// round trip.
    pub fn fill_in(&self, ctx: &mut SimCtx, batch: &mut PsBatch, value: f64) {
        self.handle.fill_in(ctx, batch, self.row, value);
    }

    /// Enqueue a [`Dcv::zero`] into `batch`.
    pub fn zero_in(&self, ctx: &mut SimCtx, batch: &mut PsBatch) {
        self.handle.zero_in(ctx, batch, self.row);
    }

    /// Begin a multi-DCV server-side computation (paper Figure 3, line 22:
    /// `weight.zip(velocity, square, gradient).mapPartition { ... }`).
    pub fn zip(&self, others: &[&Dcv]) -> ZipBuilder {
        let mut rows = vec![self.row];
        for o in others {
            assert!(
                o.handle.id == self.handle.id,
                "zip requires DCVs derived from the same dense() allocation"
            );
            rows.push(o.row);
        }
        ZipBuilder {
            handle: self.handle.clone(),
            rows,
        }
    }

    // ---- block access (shared raw matrix as a set of column vectors) -------

    /// Pull a `rows × indices` block of the raw matrix (all derived rows at
    /// the given columns). Used by LDA's by-word access.
    pub fn pull_block(&self, ctx: &mut SimCtx, rows: &[u32], indices: &[u64]) -> Vec<Vec<f64>> {
        self.handle.pull_block(ctx, rows, indices)
    }

    /// Additive block push, dual of [`Dcv::pull_block`].
    pub fn push_block(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        self.handle.push_block(ctx, rows, updates)
    }

    /// Per-key (one request per column, all in flight) block pull — the
    /// access pattern of an asynchronous pull/push-only store; used to
    /// emulate such baselines. Results match [`Dcv::pull_block`].
    pub fn pull_cols_per_key(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        indices: &[u64],
    ) -> Vec<Vec<f64>> {
        self.handle.pull_cols_per_key(ctx, rows, indices)
    }

    /// Per-key additive push, dual of [`Dcv::pull_cols_per_key`].
    pub fn push_cols_per_key(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        self.handle.push_cols_per_key(ctx, rows, updates)
    }
}

/// A pending server-side multi-vector computation over co-located rows.
pub struct ZipBuilder {
    handle: MatrixHandle,
    rows: Vec<u32>,
}

impl ZipBuilder {
    /// Run `f` on every server over the co-located segments of the zipped
    /// DCVs (mutable, in zip order). `flops_per_elem` drives the simulated
    /// compute charge per column element.
    pub fn map_partitions(self, ctx: &mut SimCtx, f: ZipMutFn, flops_per_elem: u64) {
        self.handle.zip(ctx, &self.rows, f, flops_per_elem);
    }

    /// Enqueue this zip into `batch` instead of running it now; it executes
    /// (coalesced with the batch's other ops) at [`PsBatch::flush`].
    pub fn map_partitions_in(
        self,
        ctx: &mut SimCtx,
        batch: &mut PsBatch,
        f: ZipMutFn,
        flops_per_elem: u64,
    ) {
        self.handle
            .zip_in(ctx, batch, &self.rows, f, flops_per_elem);
    }

    /// Read-only fold: `f` maps each server's co-located segments to a
    /// scalar; partials are folded with `combine` (e.g. `+` for losses).
    pub fn map_reduce(
        self,
        ctx: &mut SimCtx,
        f: ZipMapFn,
        flops_per_elem: u64,
        init: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        self.handle
            .zip_map(ctx, &self.rows, f, flops_per_elem, init, combine)
    }

    /// Server-side argmax scan: `f` maps each server's segments to its best
    /// `(score, global index)`; the global best comes back (the paper's
    /// `max` operator for GBDT split finding, §5.2.3).
    pub fn map_argmax(self, ctx: &mut SimCtx, f: ZipArgmaxFn, flops_per_elem: u64) -> (f64, u64) {
        self.handle.zip_argmax(ctx, &self.rows, f, flops_per_elem)
    }
}
