//! The PS-client: typed, routed operations on a distributed matrix.
//!
//! A [`MatrixHandle`] is held by workers (inside RDD tasks) and by the
//! coordinator; all its methods scatter requests to the owning servers
//! through the caller's `SimCtx` and gather the replies. Row-access
//! operators parallelize across servers under column partitioning — the
//! paper's fix for the single-point problem — while column-access operators
//! run server-side over co-located segments.
//!
//! ## The request fabric
//!
//! Every op is a declarative *(plan, encode, decode)* triple: pick the
//! slots, build one payload per slot, hand the batch to the shared
//! [`ps2_simnet::fabric`], decode the replies. The fabric owns the whole
//! reliability pipeline — deadline-bounded attempts, epoch-tracked route
//! re-resolution, identical-payload resend, bounded retry — so no op in
//! this file carries its own retry loop. [`PsRouter`] adapts the
//! [`RouteTable`] (and, for master-issued handles, [`PsFleet`] recovery) to
//! the fabric's `SlotRouter` trait. Mutating requests carry a per-request
//! `op_id` that servers deduplicate, so a resend racing a slow-but-alive
//! server is applied once.
//!
//! ## Envelope coalescing
//!
//! A [`PsBatch`] merges the sub-requests of *many* ops bound for the same
//! server into one `EnvelopeReq` per server per flush — the generalization
//! of the Angel-style batched psFuncs (DESIGN §4b.2). Ops enqueue with the
//! `*_in` methods and read results from [`BatchResult`]s after
//! [`PsBatch::flush`].

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use ps2_simnet::fabric::{self, FabricPolicy, SlotRouter};
use ps2_simnet::{Envelope, ProcId, SimCtx, SimTime};

use crate::consistency::ConsistencyMode;
use crate::master::PsFleet;
use crate::plan::{MatrixId, PartitionPlan, PlanKind, RouteTable};
use crate::protocol::{
    tags, AggKind, AggReq, AxpyReq, ColsSel, CrossDotReq, CrossElemReq, DotReq, ElemOp, ElemReq,
    EnvelopeReq, FillReq, PullBlockReq, PullReq, PushBlockReq, PushData, PushReq, ScaleReq, SubReq,
    ZipMapFn, ZipMapReq, ZipMutFn, ZipReq,
};

/// A handle to one distributed `rows × dim` matrix. Cheap to clone; safe to
/// capture in task closures.
#[derive(Clone)]
pub struct MatrixHandle {
    pub id: MatrixId,
    pub plan: Arc<PartitionPlan>,
    /// Slot → live server process mapping, shared with the master (which
    /// updates it when replacing failed servers).
    pub route: Arc<RouteTable>,
    /// Bytes per parameter on the wire: 8 for raw `f64`, 4 with the paper's
    /// message compression (§6.3.3).
    pub value_bytes: u64,
    /// The shared fleet view, when this handle came from a [`crate::PsMaster`]:
    /// lets a client whose request timed out run dead-server recovery
    /// directly. `None` for hand-assembled handles (tests), which then rely
    /// on someone else updating the route table.
    pub(crate) fleet: Option<Arc<PsFleet>>,
}

/// Request-header wire cost for PS ops.
const HDR: u64 = 48;

/// Per-sub-request header inside an envelope (tag + length framing).
const SUB_HDR: u64 = 8;

/// The PS layer's fabric tuning: a 10 s virtual-time attempt budget
/// (generous against micro- to millisecond op latency, so healthy runs
/// never pay it) and five straight timeouts without route movement before
/// giving up. Metrics stay under `ps.client.*`, the names the run report
/// and fault-tolerance tests consume.
pub(crate) fn ps_policy() -> FabricPolicy {
    FabricPolicy {
        attempt_timeout: SimTime::from_secs_f64(10.0),
        max_stale_attempts: 5,
        scope: "ps.client",
    }
}

/// Adapts the PS route table (+ optional fleet recovery) to the fabric's
/// router trait: timed-out attempts trigger client-side dead-server
/// recovery, and epoch movement tells the fabric to re-resolve.
pub(crate) struct PsRouter<'a> {
    pub route: &'a RouteTable,
    pub fleet: Option<&'a PsFleet>,
}

impl SlotRouter for PsRouter<'_> {
    fn resolve(&self, slot: usize) -> ProcId {
        self.route.resolve(slot)
    }

    fn epoch(&self) -> u64 {
        self.route.epoch()
    }

    fn try_recover(&self, ctx: &mut SimCtx) {
        // Any handle holder may run recovery; the fleet single-flights it.
        if let Some(fleet) = self.fleet {
            fleet.recover_dead_servers(ctx);
        }
    }
}

impl MatrixHandle {
    pub fn dim(&self) -> u64 {
        self.plan.dim
    }

    pub fn rows(&self) -> u32 {
        self.plan.rows
    }

    fn is_column(&self) -> bool {
        matches!(self.plan.kind, PlanKind::Column { .. })
    }

    /// Whether element-wise server-side ops between `self` and `other` need
    /// no cross-server traffic.
    pub fn colocated_with(&self, other: &MatrixHandle) -> bool {
        self.plan.colocated_with(&other.plan)
    }

    // ---- fabric entry points ------------------------------------------------

    /// Scatter slot-addressed requests through the shared fabric and gather
    /// every reply. One op span (`ps.client.op.{name}.*`) per call.
    fn fabric_call<P: Any + Send + Sync>(
        &self,
        ctx: &mut SimCtx,
        tag: u32,
        reqs: Vec<(usize, P, u64)>,
        rows_touched: u64,
    ) -> Vec<Envelope> {
        let router = PsRouter {
            route: &self.route,
            fleet: self.fleet.as_deref(),
        };
        fabric::call_slots(
            ctx,
            &router,
            &ps_policy(),
            tags::name(tag),
            tag,
            reqs,
            rows_touched,
        )
    }

    /// Single-request form of [`MatrixHandle::fabric_call`].
    fn fabric_one<P: Any + Send + Sync>(
        &self,
        ctx: &mut SimCtx,
        slot: usize,
        tag: u32,
        payload: P,
        bytes: u64,
        rows_touched: u64,
    ) -> Envelope {
        self.fabric_call(ctx, tag, vec![(slot, payload, bytes)], rows_touched)
            .pop()
            .expect("one reply for one request")
    }

    // ---- row access: pull -------------------------------------------------

    /// Pull a full dense row, gathering segments from every server in
    /// parallel.
    pub fn pull_row(&self, ctx: &mut SimCtx, row: u32) -> Vec<f64> {
        assert!(row < self.rows());
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let reqs = self
                    .plan
                    .column_ranges()
                    .iter()
                    .map(|&(slot, _, _)| {
                        let req = PullReq {
                            id: self.id,
                            row,
                            cols: ColsSel::All,
                            value_bytes: self.value_bytes,
                        };
                        (slot, req, HDR)
                    })
                    .collect();
                let replies = self.fabric_call(ctx, tags::PULL, reqs, 1);
                let mut out = Vec::with_capacity(self.dim() as usize);
                for env in replies {
                    let segs = env.downcast::<Vec<Vec<f64>>>();
                    for seg in segs {
                        out.extend(seg);
                    }
                }
                debug_assert_eq!(out.len() as u64, self.dim());
                out
            }
            PlanKind::Row { .. } => {
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::All,
                    value_bytes: self.value_bytes,
                };
                let segs: Vec<Vec<f64>> = self
                    .fabric_one(ctx, self.plan.row_owner(row), tags::PULL, req, HDR, 1)
                    .downcast();
                segs.into_iter().flatten().collect()
            }
        }
    }

    /// Sparse pull: only the requested columns travel — the mechanism behind
    /// PS2's advantage over Petuum's full-model pulls (§6.3.1). `cols` must
    /// be sorted ascending; values return in the same order.
    pub fn pull_cols(&self, ctx: &mut SimCtx, row: u32, cols: &[u64]) -> Vec<f64> {
        if cols.is_empty() {
            return Vec::new();
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        if !self.is_column() {
            let req = PullReq {
                id: self.id,
                row,
                cols: ColsSel::List(Arc::new(cols.to_vec())),
                value_bytes: self.value_bytes,
            };
            let bytes = HDR + 4 * cols.len() as u64;
            return self
                .fabric_one(ctx, self.plan.row_owner(row), tags::PULL, req, bytes, 1)
                .downcast();
        }
        // Split by server range; cols are sorted so each chunk is contiguous.
        let mut reqs = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new(); // [start, end) into cols
        let ranges = self.plan.column_ranges();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < cols.len() && cols[i] < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<u64> = cols[start..i].to_vec();
                let bytes = HDR + 4 * chunk.len() as u64;
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::List(Arc::new(chunk)),
                    value_bytes: self.value_bytes,
                };
                reqs.push((slot, req, bytes));
                spans.push((start, i));
            }
        }
        let replies = self.fabric_call(ctx, tags::PULL, reqs, 1);
        let mut out = vec![0.0; cols.len()];
        for (env, (start, end)) in replies.into_iter().zip(spans) {
            let values = env.downcast::<Vec<f64>>();
            out[start..end].copy_from_slice(&values);
        }
        out
    }

    /// Ranged pull: the contiguous columns `[lo, hi)` of a row — the dense
    /// worker-slice access the pull/push-only model-update path uses.
    pub fn pull_range(&self, ctx: &mut SimCtx, row: u32, lo: u64, hi: u64) -> Vec<f64> {
        assert!(lo <= hi && hi <= self.dim());
        if lo == hi {
            return Vec::new();
        }
        if !self.is_column() {
            let req = PullReq {
                id: self.id,
                row,
                cols: ColsSel::Range(lo, hi),
                value_bytes: self.value_bytes,
            };
            return self
                .fabric_one(ctx, self.plan.row_owner(row), tags::PULL, req, HDR + 16, 1)
                .downcast();
        }
        let reqs = self
            .plan
            .locate_range(lo, hi)
            .into_iter()
            .map(|(plo, phi, slot)| {
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::Range(plo, phi),
                    value_bytes: self.value_bytes,
                };
                (slot, req, HDR + 16)
            })
            .collect();
        let replies = self.fabric_call(ctx, tags::PULL, reqs, 1);
        let mut out = Vec::with_capacity((hi - lo) as usize);
        for env in replies {
            out.extend(env.downcast::<Vec<f64>>());
        }
        debug_assert_eq!(out.len() as u64, hi - lo);
        out
    }

    // ---- row access: push (add) --------------------------------------------

    /// Dense additive push of a full row, split across servers.
    pub fn push_dense(&self, ctx: &mut SimCtx, row: u32, values: &[f64]) {
        assert_eq!(values.len() as u64, self.dim());
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let reqs = self
                    .plan
                    .column_ranges()
                    .into_iter()
                    .map(|(slot, lo, hi)| {
                        let seg: Vec<f64> = values[lo as usize..hi as usize].to_vec();
                        let bytes = HDR + self.value_bytes * seg.len() as u64;
                        let req = PushReq {
                            id: self.id,
                            row,
                            data: PushData::DenseSeg {
                                lo,
                                values: Arc::new(seg),
                            },
                            op_id: ctx.alloc_reply_token(),
                        };
                        (slot, req, bytes)
                    })
                    .collect();
                let _ = self.fabric_call(ctx, tags::PUSH, reqs, 1);
            }
            PlanKind::Row { .. } => {
                let bytes = HDR + self.value_bytes * values.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::DenseSeg {
                        lo: 0,
                        values: Arc::new(values.to_vec()),
                    },
                    op_id: ctx.alloc_reply_token(),
                };
                let _ = self.fabric_one(ctx, self.plan.row_owner(row), tags::PUSH, req, bytes, 1);
            }
        }
    }

    /// Dense additive push of the contiguous columns `[lo, lo+values.len())`
    /// of a row, split across the owning servers.
    pub fn push_dense_range(&self, ctx: &mut SimCtx, row: u32, lo: u64, values: &[f64]) {
        let hi = lo + values.len() as u64;
        assert!(hi <= self.dim());
        if values.is_empty() {
            return;
        }
        if !self.is_column() {
            let bytes = HDR + self.value_bytes * values.len() as u64;
            let req = PushReq {
                id: self.id,
                row,
                data: PushData::DenseSeg {
                    lo,
                    values: Arc::new(values.to_vec()),
                },
                op_id: ctx.alloc_reply_token(),
            };
            let _ = self.fabric_one(ctx, self.plan.row_owner(row), tags::PUSH, req, bytes, 1);
            return;
        }
        let reqs = self
            .plan
            .locate_range(lo, hi)
            .into_iter()
            .map(|(plo, phi, slot)| {
                let seg: Vec<f64> = values[(plo - lo) as usize..(phi - lo) as usize].to_vec();
                let bytes = HDR + self.value_bytes * seg.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::DenseSeg {
                        lo: plo,
                        values: Arc::new(seg),
                    },
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, bytes)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::PUSH, reqs, 1);
    }

    /// Build the per-server requests of a sparse push — shared between the
    /// blocking [`MatrixHandle::push_sparse`] and the split-phase
    /// [`MatrixHandle::push_sparse_begin`].
    fn sparse_push_reqs(
        &self,
        ctx: &mut SimCtx,
        row: u32,
        pairs: &[(u64, f64)],
    ) -> Vec<(usize, PushReq, u64)> {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let per_pair = 4 + self.value_bytes;
        if !self.is_column() {
            let bytes = HDR + per_pair * pairs.len() as u64;
            let req = PushReq {
                id: self.id,
                row,
                data: PushData::Sparse(Arc::new(pairs.to_vec())),
                op_id: ctx.alloc_reply_token(),
            };
            return vec![(self.plan.row_owner(row), req, bytes)];
        }
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < pairs.len() && pairs[i].0 < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<(u64, f64)> = pairs[start..i].to_vec();
                let bytes = HDR + per_pair * chunk.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::Sparse(Arc::new(chunk)),
                    op_id: ctx.alloc_reply_token(),
                };
                reqs.push((slot, req, bytes));
            }
        }
        reqs
    }

    /// Sparse additive push (`(column, delta)` pairs, sorted by column).
    pub fn push_sparse(&self, ctx: &mut SimCtx, row: u32, pairs: &[(u64, f64)]) {
        if pairs.is_empty() {
            return;
        }
        let reqs = self.sparse_push_reqs(ctx, row, pairs);
        let _ = self.fabric_call(ctx, tags::PUSH, reqs, 1);
    }

    // ---- row access: split-phase (pipelined) push -----------------------------

    /// Start a sparse push without waiting for the acknowledgements, so the
    /// caller can overlap the next iteration's compute with the transfer —
    /// the pipelining that SSP/async training modes exploit. The returned
    /// [`PendingPush`] retains the exact payloads; [`MatrixHandle::push_wait`]
    /// settles it with the same hole-resend + dedup guarantees as the
    /// blocking path (servers dedup by `op_id`, so a resend racing a slow
    /// server applies once).
    pub fn push_sparse_begin(
        &self,
        ctx: &mut SimCtx,
        row: u32,
        pairs: &[(u64, f64)],
    ) -> PendingPush {
        let reqs = self.sparse_push_reqs(ctx, row, pairs);
        let scope = ps_policy().scope;
        ctx.metric_add(&format!("{scope}.envelopes"), reqs.len() as u64);
        let mut sent_bytes = 0u64;
        let corrs = reqs
            .iter()
            .map(|(slot, req, bytes)| {
                sent_bytes += bytes;
                ctx.send_request(self.route.resolve(*slot), tags::PUSH, req.clone(), *bytes)
            })
            .collect();
        PendingPush {
            reqs,
            corrs,
            sent_bytes,
            started: ctx.now(),
        }
    }

    /// Gather the acknowledgements of a [`MatrixHandle::push_sparse_begin`].
    /// Replies that fail to arrive within one attempt timeout are treated as
    /// holes and resent (identical payloads) through the shared fabric,
    /// which owns recovery and bounded retry from there.
    pub fn push_wait(&self, ctx: &mut SimCtx, pending: PendingPush) {
        let PendingPush {
            reqs,
            corrs,
            mut sent_bytes,
            started,
        } = pending;
        if reqs.is_empty() {
            return;
        }
        let policy = ps_policy();
        let scope = policy.scope;
        let deadline = ctx.now() + policy.attempt_timeout;
        let mut outstanding: Vec<(u64, usize)> = corrs.iter().copied().zip(0..reqs.len()).collect();
        while !outstanding.is_empty() {
            let waiting: Vec<u64> = outstanding.iter().map(|&(c, _)| c).collect();
            let Some(env) = ctx.recv_reply(&waiting, Some(deadline)) else {
                break;
            };
            sent_bytes += env.bytes;
            outstanding.retain(|&(c, _)| c != env.corr);
        }
        if !outstanding.is_empty() {
            // Holes: hand the identical payloads to the fabric, which runs
            // the full timeout/recovery/re-resolution pipeline (op-id dedup
            // makes the duplicate delivery harmless).
            ctx.metric_add(&format!("{scope}.timeouts"), outstanding.len() as u64);
            let router = PsRouter {
                route: &self.route,
                fleet: self.fleet.as_deref(),
            };
            let holes: Vec<(usize, PushReq, u64)> =
                outstanding.iter().map(|&(_, i)| reqs[i].clone()).collect();
            let _ = fabric::call_slots(ctx, &router, &policy, "push", tags::PUSH, holes, 1);
        }
        // The split-phase push records its own op span: latency measured
        // from the *begin*, which is what the pipeline actually hides.
        ctx.metric_add(&format!("{scope}.op.push_async.count"), 1);
        ctx.metric_add(&format!("{scope}.op.push_async.reqs"), reqs.len() as u64);
        ctx.metric_add(&format!("{scope}.op.push_async.bytes"), sent_bytes);
        ctx.metric_add(&format!("{scope}.op.push_async.rows"), 1);
        ctx.metric_observe(
            &format!("{scope}.op.push_async.latency"),
            ctx.now() - started,
        );
    }

    // ---- row access: aggregations -------------------------------------------

    /// Row aggregation (`sum`, `nnz`, `norm2`, `max`) computed server-side;
    /// only one scalar per server crosses the network.
    pub fn agg(&self, ctx: &mut SimCtx, row: u32, kind: AggKind) -> f64 {
        let reqs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| {
                let req = AggReq {
                    id: self.id,
                    row,
                    kind,
                };
                (slot, req, HDR)
            })
            .collect();
        let partials: Vec<f64> = self
            .fabric_call(ctx, tags::AGG, reqs, 1)
            .into_iter()
            .map(|env| env.downcast::<f64>())
            .collect();
        match kind {
            AggKind::Max => partials.into_iter().fold(f64::NEG_INFINITY, f64::max),
            _ => partials.into_iter().sum(),
        }
    }

    pub fn sum(&self, ctx: &mut SimCtx, row: u32) -> f64 {
        self.agg(ctx, row, AggKind::Sum)
    }

    pub fn nnz(&self, ctx: &mut SimCtx, row: u32) -> u64 {
        self.agg(ctx, row, AggKind::Nnz) as u64
    }

    pub fn norm2(&self, ctx: &mut SimCtx, row: u32) -> f64 {
        self.agg(ctx, row, AggKind::Norm2Sq).sqrt()
    }

    // ---- column access: server-side computation --------------------------------

    /// Dot product of two rows of this matrix, computed server-side over
    /// co-located segments; only partial scalars travel.
    pub fn dot(&self, ctx: &mut SimCtx, row_a: u32, row_b: u32) -> f64 {
        let reqs = self
            .col_op_slots(&[row_a, row_b])
            .into_iter()
            .map(|slot| {
                let req = DotReq {
                    id: self.id,
                    row_a,
                    row_b,
                };
                (slot, req, HDR)
            })
            .collect();
        self.fabric_call(ctx, tags::DOT, reqs, 2)
            .into_iter()
            .map(|env| env.downcast::<f64>())
            .sum()
    }

    /// `dst += alpha * src`, server-side.
    pub fn axpy(&self, ctx: &mut SimCtx, dst_row: u32, src_row: u32, alpha: f64) {
        let reqs = self
            .col_op_slots(&[dst_row, src_row])
            .into_iter()
            .map(|slot| {
                let req = AxpyReq {
                    id: self.id,
                    dst_row,
                    src_row,
                    alpha,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::AXPY, reqs, 2);
    }

    /// `dst = a op b`, element-wise, server-side.
    pub fn elem(&self, ctx: &mut SimCtx, dst_row: u32, a_row: u32, b_row: u32, op: ElemOp) {
        let reqs = self
            .col_op_slots(&[dst_row, a_row, b_row])
            .into_iter()
            .map(|slot| {
                let req = ElemReq {
                    id: self.id,
                    dst_row,
                    a_row,
                    b_row,
                    op,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::ELEM, reqs, 3);
    }

    /// Server-side multi-row update: on every server, `f` receives mutable
    /// co-located segments of `rows` (paper Figure 3's `zip(..).mapPartition`).
    /// `flops_per_elem` drives the simulated compute charge.
    pub fn zip(&self, ctx: &mut SimCtx, rows: &[u32], f: ZipMutFn, flops_per_elem: u64) {
        let reqs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| {
                let req = ZipReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                    op_id: ctx.alloc_reply_token(),
                };
                let bytes = HDR + 64; // UDF handle + row list
                (slot, req, bytes)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::ZIP, reqs, rows.len() as u64);
    }

    /// Server-side read-only fold over co-located segments: returns `f`'s
    /// per-range partials combined with `combine` (e.g. `f64::max` for GBDT
    /// split finding, `+` for losses).
    pub fn zip_map(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        f: ZipMapFn,
        flops_per_elem: u64,
        init: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        let reqs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| {
                let req = ZipMapReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                (slot, req, HDR + 64)
            })
            .collect();
        let mut acc = init;
        for env in self.fabric_call(ctx, tags::ZIP_MAP, reqs, rows.len() as u64) {
            for p in env.downcast::<Vec<f64>>() {
                acc = combine(acc, p);
            }
        }
        acc
    }

    /// Server-side argmax scan: `f` maps each server's co-located segments
    /// to its best `(score, global index)`; the overall best (max score,
    /// ties to the smaller index) is returned. GBDT split finding runs this
    /// over the gradient/hessian histograms (paper §5.2.3).
    ///
    /// Panics when every server returns an empty partial scan: there is no
    /// argmax to pick, and silently returning a sentinel would let a bogus
    /// split index flow into training.
    pub fn zip_argmax(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        f: crate::protocol::ZipArgmaxFn,
        flops_per_elem: u64,
    ) -> (f64, u64) {
        let reqs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| {
                let req = crate::protocol::ZipArgmaxReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                (slot, req, HDR + 64)
            })
            .collect();
        let mut best: Option<(f64, u64)> = None;
        for env in self.fabric_call(ctx, tags::ZIP_ARGMAX, reqs, rows.len() as u64) {
            for (score, idx) in env.downcast::<Vec<(f64, u64)>>() {
                best = match best {
                    Some((bs, bi)) if !(score > bs || (score == bs && idx < bi)) => Some((bs, bi)),
                    _ => Some((score, idx)),
                };
            }
        }
        best.unwrap_or_else(|| {
            panic!(
                "zip_argmax on matrix {:?}: every server returned an empty partial \
                 scan, so there is no candidate to pick (empty matrix or broken scan \
                 function?)",
                self.id
            )
        })
    }

    /// Set every element of a row to `value`.
    pub fn fill(&self, ctx: &mut SimCtx, row: u32, value: f64) {
        let reqs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| {
                let req = FillReq {
                    id: self.id,
                    row,
                    value,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::FILL, reqs, 1);
    }

    pub fn zero(&self, ctx: &mut SimCtx, row: u32) {
        self.fill(ctx, row, 0.0);
    }

    /// `row *= alpha`, server-side.
    pub fn scale(&self, ctx: &mut SimCtx, row: u32, alpha: f64) {
        let reqs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| {
                let req = ScaleReq {
                    id: self.id,
                    row,
                    alpha,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::SCALE, reqs, 1);
    }

    // ---- batched ops (sugar over PsBatch) ---------------------------------------

    /// Many server-side dot products in **one envelope per server** (the
    /// Angel-style batched psFunc: DeepWalk issues one per mini-batch).
    /// Result `i` is the dot of `pairs[i]`.
    pub fn dot_many(&self, ctx: &mut SimCtx, pairs: &[(u32, u32)]) -> Vec<f64> {
        let mut batch = PsBatch::new();
        let out = self.dot_many_in(&mut batch, pairs);
        batch.flush(ctx);
        out.take()
    }

    /// Many independent server-side zips in one envelope per server.
    pub fn zip_many(&self, ctx: &mut SimCtx, jobs: Vec<(Vec<u32>, ZipMutFn)>, flops_per_elem: u64) {
        let mut batch = PsBatch::new();
        self.zip_many_in(ctx, &mut batch, jobs, flops_per_elem);
        batch.flush(ctx);
    }

    /// Pull many full dense rows in one envelope per server. Result `i` is
    /// `rows[i]`'s values.
    pub fn pull_rows(&self, ctx: &mut SimCtx, rows: &[u32]) -> Vec<Vec<f64>> {
        let mut batch = PsBatch::new();
        let out = self.pull_rows_in(&mut batch, rows);
        batch.flush(ctx);
        out.take()
    }

    /// Dense additive push of many full rows in one envelope per server.
    pub fn push_dense_many(&self, ctx: &mut SimCtx, updates: &[(u32, Vec<f64>)]) {
        let mut batch = PsBatch::new();
        self.push_dense_many_in(ctx, &mut batch, updates);
        batch.flush(ctx);
    }

    // ---- batch enqueue API ------------------------------------------------------

    /// Enqueue a [`MatrixHandle::zip`] into `batch` (one sub-request per
    /// owning server). Takes effect at [`PsBatch::flush`].
    pub fn zip_in(
        &self,
        ctx: &mut SimCtx,
        batch: &mut PsBatch,
        rows: &[u32],
        f: ZipMutFn,
        flops_per_elem: u64,
    ) {
        let req: Arc<dyn Any + Send + Sync> = Arc::new(ZipReq {
            id: self.id,
            rows: rows.to_vec(),
            f,
            flops_per_elem,
            op_id: ctx.alloc_reply_token(),
        });
        let subs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| (slot, tags::ZIP, Arc::clone(&req), 64))
            .collect();
        batch.enqueue(self, subs, rows.len() as u64, None);
    }

    /// Enqueue a [`MatrixHandle::fill`] into `batch`.
    pub fn fill_in(&self, ctx: &mut SimCtx, batch: &mut PsBatch, row: u32, value: f64) {
        let req: Arc<dyn Any + Send + Sync> = Arc::new(FillReq {
            id: self.id,
            row,
            value,
            op_id: ctx.alloc_reply_token(),
        });
        let subs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| (slot, tags::FILL, Arc::clone(&req), 0))
            .collect();
        batch.enqueue(self, subs, 1, None);
    }

    /// Enqueue a [`MatrixHandle::zero`] into `batch`.
    pub fn zero_in(&self, ctx: &mut SimCtx, batch: &mut PsBatch, row: u32) {
        self.fill_in(ctx, batch, row, 0.0);
    }

    /// Enqueue many dot products into `batch`; the result is available after
    /// flush. Result `i` is the dot of `pairs[i]`.
    pub fn dot_many_in(&self, batch: &mut PsBatch, pairs: &[(u32, u32)]) -> BatchResult<Vec<f64>> {
        let result = BatchResult::empty();
        if pairs.is_empty() {
            result.fill(Vec::new());
            return result;
        }
        let pair_reqs: Vec<Arc<dyn Any + Send + Sync>> = pairs
            .iter()
            .map(|&(row_a, row_b)| {
                Arc::new(DotReq {
                    id: self.id,
                    row_a,
                    row_b,
                }) as Arc<dyn Any + Send + Sync>
            })
            .collect();
        let mut subs = Vec::new();
        for slot in self.col_op_slots(&[pairs[0].0]) {
            for req in &pair_reqs {
                subs.push((slot, tags::DOT, Arc::clone(req), 8));
            }
        }
        let n = pairs.len();
        let cell = result.clone();
        batch.enqueue(
            self,
            subs,
            2 * n as u64,
            Some(Box::new(move |collected| {
                // Slot-major order: sub k belongs to pair k % n.
                let mut out = vec![0.0; n];
                for (k, (_slot, reply)) in collected.into_iter().enumerate() {
                    out[k % n] += *reply.downcast::<f64>().expect("dot partial");
                }
                cell.fill(out);
            })),
        );
        result
    }

    /// Enqueue many independent zips into `batch`. Each job's closure
    /// typically captures one scalar coefficient, accounted at 16 bytes per
    /// job on the wire plus its row list.
    pub fn zip_many_in(
        &self,
        ctx: &mut SimCtx,
        batch: &mut PsBatch,
        jobs: Vec<(Vec<u32>, ZipMutFn)>,
        flops_per_elem: u64,
    ) {
        if jobs.is_empty() {
            return;
        }
        let first_row = jobs[0].0[0];
        let rows_total: u64 = jobs.iter().map(|(r, _)| r.len() as u64).sum();
        let job_reqs: Vec<(Arc<dyn Any + Send + Sync>, u64)> = jobs
            .into_iter()
            .map(|(rows, f)| {
                let body = 16 + 4 * rows.len() as u64;
                let req: Arc<dyn Any + Send + Sync> = Arc::new(ZipReq {
                    id: self.id,
                    rows,
                    f,
                    flops_per_elem,
                    op_id: ctx.alloc_reply_token(),
                });
                (req, body)
            })
            .collect();
        let mut subs = Vec::new();
        for slot in self.col_op_slots(&[first_row]) {
            for (req, body) in &job_reqs {
                subs.push((slot, tags::ZIP, Arc::clone(req), *body));
            }
        }
        batch.enqueue(self, subs, rows_total, None);
    }

    /// Enqueue pulls of many full dense rows into `batch`; results are
    /// available after flush, `rows[i]`'s values at index `i`.
    pub fn pull_rows_in(&self, batch: &mut PsBatch, rows: &[u32]) -> BatchResult<Vec<Vec<f64>>> {
        let result = BatchResult::empty();
        if rows.is_empty() {
            result.fill(Vec::new());
            return result;
        }
        assert!(self.is_column(), "pull_rows requires column partitioning");
        let row_reqs: Vec<Arc<dyn Any + Send + Sync>> = rows
            .iter()
            .map(|&row| {
                Arc::new(PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::All,
                    value_bytes: self.value_bytes,
                }) as Arc<dyn Any + Send + Sync>
            })
            .collect();
        let mut subs = Vec::new();
        for slot in self.column_slots() {
            for req in &row_reqs {
                subs.push((slot, tags::PULL, Arc::clone(req), 4));
            }
        }
        let n = rows.len();
        let dim = self.dim() as usize;
        let plan = Arc::clone(&self.plan);
        let cell = result.clone();
        batch.enqueue(
            self,
            subs,
            n as u64,
            Some(Box::new(move |collected| {
                let mut out: Vec<Vec<f64>> = vec![vec![0.0; dim]; n];
                for (k, (slot, reply)) in collected.into_iter().enumerate() {
                    let segs = *reply.downcast::<Vec<Vec<f64>>>().expect("pulled segments");
                    let row_out = &mut out[k % n];
                    for (&(lo, hi), seg) in plan.ranges_of(slot).iter().zip(segs) {
                        debug_assert_eq!(seg.len() as u64, hi - lo);
                        row_out[lo as usize..hi as usize].copy_from_slice(&seg);
                    }
                }
                cell.fill(out);
            })),
        );
        result
    }

    /// Enqueue dense additive pushes of many full rows into `batch`.
    pub fn push_dense_many_in(
        &self,
        ctx: &mut SimCtx,
        batch: &mut PsBatch,
        updates: &[(u32, Vec<f64>)],
    ) {
        if updates.is_empty() {
            return;
        }
        assert!(
            self.is_column(),
            "push_dense_many requires column partitioning"
        );
        let mut subs = Vec::new();
        for &(slot, lo, hi) in &self.plan.column_ranges() {
            for (row, values) in updates {
                let seg: Vec<f64> = values[lo as usize..hi as usize].to_vec();
                let body = 4 + self.value_bytes * seg.len() as u64;
                let req: Arc<dyn Any + Send + Sync> = Arc::new(PushReq {
                    id: self.id,
                    row: *row,
                    data: PushData::DenseSeg {
                        lo,
                        values: Arc::new(seg),
                    },
                    op_id: ctx.alloc_reply_token(),
                });
                subs.push((slot, tags::PUSH, req, body));
            }
        }
        batch.enqueue(self, subs, updates.len() as u64, None);
    }

    // ---- block access (LDA's by-column pattern) --------------------------------

    /// Pull the `rows × cols` block, `[col][row]`-ordered. Under column
    /// partitioning all rows of one column are co-located, so each column
    /// costs exactly one server's reply.
    pub fn pull_block(&self, ctx: &mut SimCtx, rows: &[u32], cols: &[u64]) -> Vec<Vec<f64>> {
        assert!(self.is_column(), "pull_block requires column partitioning");
        if cols.is_empty() {
            return Vec::new();
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let rows_arc = Arc::new(rows.to_vec());
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut spans = Vec::new();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < cols.len() && cols[i] < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<u64> = cols[start..i].to_vec();
                let bytes = HDR + 4 * chunk.len() as u64 + 4 * rows.len() as u64;
                let req = PullBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    cols: Arc::new(chunk),
                    value_bytes: self.value_bytes,
                };
                reqs.push((slot, req, bytes));
                spans.push((start, i));
            }
        }
        let replies = self.fabric_call(ctx, tags::PULL_BLOCK, reqs, rows.len() as u64);
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
        for (env, (start, end)) in replies.into_iter().zip(spans) {
            let block = env.downcast::<Vec<Vec<f64>>>();
            for (slot, col_vals) in out[start..end].iter_mut().zip(block) {
                *slot = col_vals;
            }
        }
        out
    }

    /// Additive block push: `updates[(col, deltas aligned with rows)]`,
    /// sorted by column.
    pub fn push_block(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        assert!(self.is_column(), "push_block requires column partitioning");
        if updates.is_empty() {
            return;
        }
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0));
        let rows_arc = Arc::new(rows.to_vec());
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut i = 0usize;
        let per_cell = self.value_bytes;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < updates.len() && updates[i].0 < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<(u64, Vec<f64>)> = updates[start..i].to_vec();
                let cells: u64 = chunk.iter().map(|(_, d)| d.len() as u64).sum();
                let bytes = HDR + 4 * chunk.len() as u64 + per_cell * cells;
                let req = PushBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    updates: Arc::new(chunk),
                    op_id: ctx.alloc_reply_token(),
                };
                reqs.push((slot, req, bytes));
            }
        }
        let _ = self.fabric_call(ctx, tags::PUSH_BLOCK, reqs, rows.len() as u64);
    }

    /// Per-key block pulls: one request per column, all concurrently in
    /// flight (an *asynchronous* pull/push store's access pattern — no
    /// batched block protocol). Same result as [`MatrixHandle::pull_block`],
    /// different cost: per-request headers for every key.
    pub fn pull_cols_per_key(&self, ctx: &mut SimCtx, rows: &[u32], cols: &[u64]) -> Vec<Vec<f64>> {
        assert!(
            self.is_column(),
            "pull_cols_per_key requires column partitioning"
        );
        if cols.is_empty() {
            return Vec::new();
        }
        let rows_arc = Arc::new(rows.to_vec());
        let reqs = cols
            .iter()
            .map(|&c| {
                let req = PullBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    cols: Arc::new(vec![c]),
                    value_bytes: self.value_bytes,
                };
                (self.plan.col_owner(c), req, HDR + 4 + 4 * rows.len() as u64)
            })
            .collect();
        self.fabric_call(ctx, tags::PULL_BLOCK, reqs, rows.len() as u64)
            .into_iter()
            .map(|env| {
                env.downcast::<Vec<Vec<f64>>>()
                    .into_iter()
                    .next()
                    .expect("one column per reply")
            })
            .collect()
    }

    /// Per-key additive pushes, dual of [`MatrixHandle::pull_cols_per_key`]:
    /// one request per updated column, all concurrently in flight.
    pub fn push_cols_per_key(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        assert!(
            self.is_column(),
            "push_cols_per_key requires column partitioning"
        );
        if updates.is_empty() {
            return;
        }
        let rows_arc = Arc::new(rows.to_vec());
        let per_cell = self.value_bytes;
        let reqs = updates
            .iter()
            .map(|(c, deltas)| {
                let bytes = HDR + 4 + per_cell * deltas.len() as u64;
                let req = PushBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    updates: Arc::new(vec![(*c, deltas.clone())]),
                    op_id: ctx.alloc_reply_token(),
                };
                (self.plan.col_owner(*c), req, bytes)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::PUSH_BLOCK, reqs, rows.len() as u64);
    }

    // ---- cross-matrix ops (the Figure 4 story) -----------------------------------

    /// Dot between `self[row_self]` and `other[row_other]`.
    ///
    /// Co-located: runs like [`MatrixHandle::dot`] — no server↔server bytes.
    /// Misaligned: each of `self`'s servers fetches the matching remote
    /// segments before multiplying, paying the shuffle the paper's Figure 4
    /// warns about. Requests are issued sequentially to keep server↔server
    /// fetches acyclic. Retries re-resolve the *local* slot; a remote server
    /// dying mid-fetch is out of scope for client-side recovery (the local
    /// server blocks on it without a deadline).
    pub fn cross_dot(
        &self,
        ctx: &mut SimCtx,
        other: &MatrixHandle,
        row_self: u32,
        row_other: u32,
    ) -> f64 {
        assert_eq!(self.dim(), other.dim());
        assert!(self.is_column() && other.is_column());
        let mut acc = 0.0;
        for (slot, lo, hi) in self.plan.column_ranges() {
            let pieces = if self.colocated_with(other) {
                vec![(lo, hi, self.route.resolve(slot))]
            } else {
                other
                    .plan
                    .locate_range(lo, hi)
                    .into_iter()
                    .map(|(a, b, s)| (a, b, other.route.resolve(s)))
                    .collect()
            };
            let req = CrossDotReq {
                local_id: self.id,
                local_row: row_self,
                remote_id: other.id,
                remote_row: row_other,
                pieces,
                value_bytes: other.value_bytes,
            };
            let partial: f64 = self
                .fabric_one(ctx, slot, tags::CROSS_DOT, req, HDR + 24, 2)
                .downcast();
            acc += partial;
        }
        acc
    }

    /// `self[dst_row] = self[dst_row] op other[src_row]`, handling
    /// misaligned layouts by server↔server fetches (sequential, see
    /// [`MatrixHandle::cross_dot`]).
    pub fn cross_elem(
        &self,
        ctx: &mut SimCtx,
        other: &MatrixHandle,
        dst_row: u32,
        src_row: u32,
        op: ElemOp,
    ) {
        assert_eq!(self.dim(), other.dim());
        assert!(self.is_column() && other.is_column());
        for (slot, lo, hi) in self.plan.column_ranges() {
            let pieces = if self.colocated_with(other) {
                vec![(lo, hi, self.route.resolve(slot))]
            } else {
                other
                    .plan
                    .locate_range(lo, hi)
                    .into_iter()
                    .map(|(a, b, s)| (a, b, other.route.resolve(s)))
                    .collect()
            };
            let req = CrossElemReq {
                dst_id: self.id,
                dst_row,
                src_id: other.id,
                src_row,
                op,
                pieces,
                value_bytes: other.value_bytes,
                op_id: ctx.alloc_reply_token(),
            };
            let _ = self.fabric_one(ctx, slot, tags::CROSS_ELEM, req, HDR + 24, 2);
        }
    }

    // ---- routing helpers -----------------------------------------------------

    /// Slots owning any part of a column-partitioned matrix, sorted and
    /// de-duplicated. `column_ranges()` is *column*-ordered — for rotated or
    /// hand-built plans that is not slot-ordered, so a bare `dedup()` (which
    /// only merges adjacent repeats) would leave duplicate slots and fan the
    /// same request out twice.
    fn column_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self
            .plan
            .column_ranges()
            .iter()
            .map(|&(s, _, _)| s)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Slots that hold any part of `row`.
    fn row_slots(&self, row: u32) -> Vec<usize> {
        match &self.plan.kind {
            PlanKind::Column { .. } => self.column_slots(),
            PlanKind::Row { .. } => vec![self.plan.row_owner(row)],
        }
    }

    /// Slots participating in a column op over `rows`; for row plans this
    /// only works when all rows share one owner.
    fn col_op_slots(&self, rows: &[u32]) -> Vec<usize> {
        match &self.plan.kind {
            PlanKind::Column { .. } => self.row_slots(rows[0]),
            PlanKind::Row { .. } => {
                let owners: Vec<usize> = rows.iter().map(|&r| self.plan.row_owner(r)).collect();
                assert!(
                    owners.windows(2).all(|w| w[0] == w[1]),
                    "row-partitioned matrices only support column ops on co-owned rows \
                     (the single-point limitation of row partitioning, paper §4.3)"
                );
                vec![owners[0]]
            }
        }
    }
}

// ---- split-phase push bookkeeping -------------------------------------------

/// An unacknowledged sparse push started with
/// [`MatrixHandle::push_sparse_begin`]. Retains the exact per-server
/// payloads so a hole can be resent byte-for-byte (the receiver dedups by
/// op-id). Settle with [`MatrixHandle::push_wait`]; dropping it without
/// waiting leaks nothing but forfeits the delivery guarantee.
#[must_use = "settle a pending push with MatrixHandle::push_wait"]
pub struct PendingPush {
    reqs: Vec<(usize, PushReq, u64)>,
    corrs: Vec<u64>,
    sent_bytes: u64,
    started: SimTime,
}

impl PendingPush {
    /// Number of per-server requests in flight.
    pub fn in_flight(&self) -> usize {
        self.reqs.len()
    }
}

// ---- the client-side parameter cache ----------------------------------------

/// A worker-local parameter cache, the client half of the consistency
/// modes: `pull_cols`/`pull_rows` are served from local copies while the
/// entries are within the mode's staleness ttl, and only the misses travel.
///
/// Coherence rules (documented in DESIGN.md §consistency modes):
///
/// * An entry fetched at worker clock `f` may be served at clock `t` while
///   `t − f ≤ ttl`, where ttl is [`ConsistencyMode::cache_ttl`] — 0 under
///   BSP (an entry never survives its own iteration), the bound under SSP,
///   a fixed small ttl under async.
/// * The worker's own pushes are applied write-through via
///   [`ParamCache::note_push`], so a worker always reads its own writes
///   even when the push is still in flight.
/// * Any movement of the handle's route epoch (a server was replaced and
///   restored from checkpoint) invalidates the whole cache: restored state
///   may predate cached entries, and the bound must be re-established from
///   fresh pulls.
pub struct ParamCache {
    mode: ConsistencyMode,
    /// The owner's current iteration clock (set by [`ParamCache::advance_clock`]).
    clock: u32,
    /// Route epoch the entries were fetched under.
    epoch_seen: u64,
    /// Sparse entries: `(row, col) → (value, fetched_at_clock)`.
    cols: BTreeMap<(u32, u64), (f64, u32)>,
    /// Dense whole-row entries: `row → (values, fetched_at_clock)`.
    rows: BTreeMap<u32, (Vec<f64>, u32)>,
}

impl ParamCache {
    pub fn new(mode: ConsistencyMode) -> ParamCache {
        ParamCache {
            mode,
            clock: 0,
            epoch_seen: 0,
            cols: BTreeMap::new(),
            rows: BTreeMap::new(),
        }
    }

    pub fn mode(&self) -> ConsistencyMode {
        self.mode
    }

    /// Move the owner's clock to iteration `t` and evict every entry that
    /// can no longer be served under the ttl.
    pub fn advance_clock(&mut self, t: u32) {
        self.clock = t;
        let ttl = self.mode.cache_ttl();
        self.cols.retain(|_, &mut (_, f)| t - f.min(t) <= ttl);
        self.rows.retain(|_, &mut (_, f)| t - f.min(t) <= ttl);
    }

    /// Drop everything (used on route-epoch movement, available to tests).
    pub fn invalidate(&mut self) {
        self.cols.clear();
        self.rows.clear();
    }

    /// Cached entries currently held (both kinds).
    pub fn len(&self) -> usize {
        self.cols.len() + self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty() && self.rows.is_empty()
    }

    fn fresh(&self, fetched_at: u32) -> bool {
        self.clock - fetched_at.min(self.clock) <= self.mode.cache_ttl()
    }

    /// Invalidate on route-epoch movement: a replaced server was restored
    /// from checkpoint, so cached values may be newer than the server's.
    fn validate_epoch(&mut self, handle: &MatrixHandle) {
        let epoch = handle.route.epoch();
        if epoch != self.epoch_seen {
            self.invalidate();
            self.epoch_seen = epoch;
        }
    }

    /// [`MatrixHandle::pull_cols`] through the cache: hits are served
    /// locally (no messages, no virtual time), misses travel in one sparse
    /// pull, and the merged result comes back in `cols` order. Counters
    /// `ps.cache.hit` / `ps.cache.miss` record the split.
    pub fn pull_cols(
        &mut self,
        ctx: &mut SimCtx,
        handle: &MatrixHandle,
        row: u32,
        cols: &[u64],
    ) -> Vec<f64> {
        self.validate_epoch(handle);
        let mut missing: Vec<u64> = Vec::new();
        for &c in cols {
            match self.cols.get(&(row, c)) {
                Some(&(_, f)) if self.fresh(f) => {}
                _ => missing.push(c),
            }
        }
        ctx.metric_add("ps.cache.hit", (cols.len() - missing.len()) as u64);
        ctx.metric_add("ps.cache.miss", missing.len() as u64);
        if !missing.is_empty() {
            let fetched = handle.pull_cols(ctx, row, &missing);
            let t0 = ctx.now();
            for (&c, &v) in missing.iter().zip(&fetched) {
                self.cols.insert((row, c), (v, self.clock));
            }
            // Attribute the local merge to the pulls that fetched it (the
            // cache-fill stage of the request trace) and seal their records.
            // The merge is free under the current cost model, so this is
            // measured, not assumed.
            ctx.req_cache_fill(ctx.now() - t0);
        }
        cols.iter()
            .map(|&c| self.cols.get(&(row, c)).expect("filled above").0)
            .collect()
    }

    /// [`MatrixHandle::pull_rows`] through the cache: whole dense rows are
    /// cached as units; only the rows not fresh enough travel.
    pub fn pull_rows(
        &mut self,
        ctx: &mut SimCtx,
        handle: &MatrixHandle,
        rows: &[u32],
    ) -> Vec<Vec<f64>> {
        self.validate_epoch(handle);
        let missing: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|r| match self.rows.get(r) {
                Some(&(_, f)) => !self.fresh(f),
                None => true,
            })
            .collect();
        ctx.metric_add("ps.cache.hit", (rows.len() - missing.len()) as u64);
        ctx.metric_add("ps.cache.miss", missing.len() as u64);
        if !missing.is_empty() {
            let fetched = handle.pull_rows(ctx, &missing);
            let t0 = ctx.now();
            for (&r, v) in missing.iter().zip(fetched) {
                self.rows.insert(r, (v, self.clock));
            }
            ctx.req_cache_fill(ctx.now() - t0);
        }
        rows.iter()
            .map(|r| self.rows.get(r).expect("filled above").0.clone())
            .collect()
    }

    /// Apply the worker's own sparse push to the cached copies
    /// (read-my-writes): existing entries absorb the delta and count as
    /// refreshed at the current clock — the server's value is at least this
    /// new once the push lands. Columns not cached are left alone.
    pub fn note_push(&mut self, row: u32, pairs: &[(u64, f64)]) {
        for &(c, d) in pairs {
            if let Some(e) = self.cols.get_mut(&(row, c)) {
                e.0 += d;
                e.1 = self.clock;
            }
        }
        if let Some((values, f)) = self.rows.get_mut(&row) {
            for &(c, d) in pairs {
                if let Some(v) = values.get_mut(c as usize) {
                    *v += d;
                }
            }
            *f = self.clock;
        }
    }
}

// ---- the coalescing batch context ------------------------------------------

/// The value an enqueued batched op will produce. Readable with
/// [`BatchResult::take`] only after the owning [`PsBatch`] has flushed.
pub struct BatchResult<T> {
    cell: Rc<RefCell<Option<T>>>,
}

impl<T> Clone for BatchResult<T> {
    fn clone(&self) -> Self {
        BatchResult {
            cell: Rc::clone(&self.cell),
        }
    }
}

impl<T> BatchResult<T> {
    fn empty() -> Self {
        BatchResult {
            cell: Rc::new(RefCell::new(None)),
        }
    }

    fn fill(&self, value: T) {
        *self.cell.borrow_mut() = Some(value);
    }

    /// The op's decoded result. Panics if the batch has not been flushed.
    pub fn take(&self) -> T {
        self.cell
            .borrow_mut()
            .take()
            .expect("PsBatch::flush must run before BatchResult::take")
    }
}

/// One queued sub-request: owning op, tag, payload, body bytes.
type QueuedSub = (usize, u32, Arc<dyn Any + Send + Sync>, u64);

/// Decoder of one op's sub-replies, delivered as `(slot, reply)` in
/// slot-major enqueue order.
type Decoder = Box<dyn FnOnce(Vec<(usize, Box<dyn Any + Send>)>)>;

/// Per-destination envelope coalescing: every op enqueued between flushes
/// contributes sub-requests, and [`PsBatch::flush`] sends **one**
/// `EnvelopeReq` per server carrying all of them — one round trip where the
/// bare ops would each have paid their own. Mutating sub-requests keep their
/// individual op-ids, so a retried envelope (fabric resends the identical
/// payload) re-applies nothing.
///
/// All enqueued ops must live on the same server fleet (share a route
/// table); the batch binds to the first handle's and asserts on the rest.
/// A batch may be reused: flush leaves it empty but bound.
#[derive(Default)]
pub struct PsBatch {
    route: Option<Arc<RouteTable>>,
    fleet: Option<Arc<PsFleet>>,
    by_slot: BTreeMap<usize, Vec<QueuedSub>>,
    decoders: Vec<Option<Decoder>>,
    rows_touched: u64,
}

impl PsBatch {
    pub fn new() -> PsBatch {
        PsBatch::default()
    }

    pub fn is_empty(&self) -> bool {
        self.by_slot.is_empty()
    }

    fn bind(&mut self, h: &MatrixHandle) {
        match &self.route {
            None => {
                self.route = Some(Arc::clone(&h.route));
                self.fleet = h.fleet.clone();
            }
            Some(route) => assert!(
                Arc::ptr_eq(route, &h.route),
                "a PsBatch coalesces per server: every enqueued op must target \
                 the same server fleet (shared route table)"
            ),
        }
    }

    /// Queue one op's sub-requests `(slot, tag, payload, body bytes)` and
    /// its reply decoder (None for fire-and-forget mutations).
    fn enqueue(
        &mut self,
        h: &MatrixHandle,
        subs: Vec<(usize, u32, Arc<dyn Any + Send + Sync>, u64)>,
        rows_touched: u64,
        decoder: Option<Decoder>,
    ) {
        self.bind(h);
        let op_idx = self.decoders.len();
        for (slot, tag, payload, body) in subs {
            self.by_slot
                .entry(slot)
                .or_default()
                .push((op_idx, tag, payload, body));
        }
        self.rows_touched += rows_touched;
        self.decoders.push(decoder);
    }

    /// Send one envelope per destination server through the fabric, wait for
    /// all replies, and run every enqueued op's decoder. The batch is left
    /// empty (but still bound) for reuse.
    pub fn flush(&mut self, ctx: &mut SimCtx) {
        let by_slot = std::mem::take(&mut self.by_slot);
        let decoders = std::mem::take(&mut self.decoders);
        let rows_touched = std::mem::replace(&mut self.rows_touched, 0);
        if by_slot.is_empty() {
            return;
        }
        let route = Arc::clone(self.route.as_ref().expect("non-empty batch is bound"));
        let fleet = self.fleet.clone();
        let epoch = route.epoch();
        let slots: Vec<usize> = by_slot.keys().copied().collect();
        let reqs: Vec<(usize, EnvelopeReq, u64)> = slots
            .iter()
            .map(|&slot| {
                let subs: Vec<SubReq> = by_slot[&slot]
                    .iter()
                    .map(|(_, tag, payload, body)| (*tag, Arc::clone(payload), *body))
                    .collect();
                let bytes = HDR + subs.iter().map(|&(_, _, b)| SUB_HDR + b).sum::<u64>();
                let env = EnvelopeReq {
                    op_id: ctx.alloc_reply_token(),
                    epoch,
                    subs: Arc::new(subs),
                };
                (slot, env, bytes)
            })
            .collect();
        let router = PsRouter {
            route: &route,
            fleet: fleet.as_deref(),
        };
        let replies = fabric::call_slots(
            ctx,
            &router,
            &ps_policy(),
            "envelope",
            tags::ENVELOPE,
            reqs,
            rows_touched,
        );
        // Split each server's reply vector back out to the owning ops.
        let mut per_op: Vec<Vec<(usize, Box<dyn Any + Send>)>> =
            (0..decoders.len()).map(|_| Vec::new()).collect();
        for (&slot, env) in slots.iter().zip(replies) {
            let sub_replies = env.downcast::<Vec<Box<dyn Any + Send>>>();
            debug_assert_eq!(sub_replies.len(), by_slot[&slot].len());
            for ((op_idx, _, _, _), reply) in by_slot[&slot].iter().zip(sub_replies) {
                per_op[*op_idx].push((slot, reply));
            }
        }
        for (decoder, collected) in decoders.into_iter().zip(per_op) {
            if let Some(d) = decoder {
                d(collected);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partitioning;
    use ps2_simnet::{SimBuilder, SimError};

    fn bare_handle(plan: PartitionPlan, route: Arc<RouteTable>) -> MatrixHandle {
        MatrixHandle {
            id: MatrixId(1),
            plan: Arc::new(plan),
            route,
            value_bytes: 8,
            fleet: None,
        }
    }

    #[test]
    fn row_slots_are_sorted_and_unique_for_multi_range_plans() {
        // Hand-built plan interleaving two slots over four ranges:
        // column_ranges() yields slots [0, 1, 0, 1] in column order. A bare
        // dedup() (no sort) used to keep all four, fanning each row op out
        // to the same server twice.
        let plan = PartitionPlan {
            dim: 100,
            rows: 1,
            kind: PlanKind::Column {
                boundaries: vec![0, 25, 50, 75, 100],
                assign: vec![0, 1, 0, 1],
            },
        };
        let h = bare_handle(plan, RouteTable::new(vec![ProcId(1), ProcId(2)]));
        assert_eq!(h.row_slots(0), vec![0, 1]);
        assert_eq!(h.col_op_slots(&[0]), vec![0, 1]);
    }

    #[test]
    fn row_slots_on_rotated_plans_stay_sorted() {
        let plan = PartitionPlan::new(90, 1, 3, Partitioning::ColumnRotated(1));
        // column order visits slots [1, 2, 0]; the helper must not depend
        // on visiting order.
        let h = bare_handle(plan, RouteTable::new(vec![ProcId(1), ProcId(2), ProcId(3)]));
        assert_eq!(h.row_slots(0), vec![0, 1, 2]);
    }

    #[test]
    fn zip_argmax_with_no_candidates_panics_with_diagnosis() {
        let mut sim = SimBuilder::new().seed(5).build();
        // A "server" answering every scan with zero candidates — the shape
        // that used to produce a silent (NEG_INFINITY, u64::MAX) sentinel.
        let empty = sim.spawn_daemon("empty-server", |ctx| loop {
            let env = ctx.recv();
            ctx.reply(&env, Vec::<(f64, u64)>::new(), 16);
        });
        sim.spawn("driver", move |ctx| {
            let plan = PartitionPlan::new(10, 1, 1, Partitioning::Column);
            let h = bare_handle(plan, RouteTable::new(vec![empty]));
            let f: crate::protocol::ZipArgmaxFn = Arc::new(|_, lo| (0.0, lo));
            let _ = h.zip_argmax(ctx, &[0], f, 1);
        });
        match sim.run() {
            Err(SimError::ProcPanic { message, .. }) => {
                assert!(
                    message.contains("zip_argmax"),
                    "diagnostic must name the op, got: {message}"
                );
            }
            other => panic!("expected a diagnosed panic, got {other:?}"),
        }
    }
}
