//! The PS-client: typed, routed operations on a distributed matrix.
//!
//! A [`MatrixHandle`] is held by workers (inside RDD tasks) and by the
//! coordinator; all its methods scatter requests to the owning servers
//! through the caller's `SimCtx` and gather the replies. Row-access
//! operators parallelize across servers under column partitioning — the
//! paper's fix for the single-point problem — while column-access operators
//! run server-side over co-located segments.

use std::any::Any;
use std::sync::Arc;

use ps2_simnet::{ProcId, SimCtx};

use crate::plan::{MatrixId, PartitionPlan, PlanKind, RouteTable};
use crate::protocol::{
    tags, AggKind, AggReq, AxpyReq, ColsSel, CrossDotReq, CrossElemReq, DotReq, ElemOp, ElemReq,
    FillReq, PullBlockReq, PullReq, PushBlockReq, PushData, PushReq, ScaleReq, ZipMapFn,
    ZipMapReq, ZipMutFn, ZipReq,
};

/// A handle to one distributed `rows × dim` matrix. Cheap to clone; safe to
/// capture in task closures.
#[derive(Clone)]
pub struct MatrixHandle {
    pub id: MatrixId,
    pub plan: Arc<PartitionPlan>,
    /// Slot → live server process mapping, shared with the master (which
    /// updates it when replacing failed servers).
    pub route: Arc<RouteTable>,
    /// Bytes per parameter on the wire: 8 for raw `f64`, 4 with the paper's
    /// message compression (§6.3.3).
    pub value_bytes: u64,
}

/// Request-header wire cost for PS ops.
const HDR: u64 = 48;

impl MatrixHandle {
    pub fn dim(&self) -> u64 {
        self.plan.dim
    }

    pub fn rows(&self) -> u32 {
        self.plan.rows
    }

    fn is_column(&self) -> bool {
        matches!(self.plan.kind, PlanKind::Column { .. })
    }

    /// Whether element-wise server-side ops between `self` and `other` need
    /// no cross-server traffic.
    pub fn colocated_with(&self, other: &MatrixHandle) -> bool {
        self.plan.colocated_with(&other.plan)
    }

    // ---- row access: pull -------------------------------------------------

    /// Pull a full dense row, gathering segments from every server in
    /// parallel.
    pub fn pull_row(&self, ctx: &mut SimCtx, row: u32) -> Vec<f64> {
        assert!(row < self.rows());
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let ranges = self.plan.column_ranges();
                let reqs = ranges
                    .iter()
                    .map(|&(slot, _, _)| {
                        let srv = self.route.resolve(slot);
                        let req = PullReq {
                            id: self.id,
                            row,
                            cols: ColsSel::All,
                            value_bytes: self.value_bytes,
                        };
                        (srv, tags::PULL, Box::new(req) as Box<dyn Any + Send>, HDR)
                    })
                    .collect();
                let replies = ctx.call_many(reqs);
                let mut out = Vec::with_capacity(self.dim() as usize);
                for env in replies {
                    let segs = env.downcast::<Vec<Vec<f64>>>();
                    for seg in segs {
                        out.extend(seg);
                    }
                }
                debug_assert_eq!(out.len() as u64, self.dim());
                out
            }
            PlanKind::Row { .. } => {
                let owner = self.route.resolve(self.plan.row_owner(row));
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::All,
                    value_bytes: self.value_bytes,
                };
                let segs: Vec<Vec<f64>> = ctx.call(owner, tags::PULL, req, HDR).downcast();
                segs.into_iter().flatten().collect()
            }
        }
    }

    /// Sparse pull: only the requested columns travel — the mechanism behind
    /// PS2's advantage over Petuum's full-model pulls (§6.3.1). `cols` must
    /// be sorted ascending; values return in the same order.
    pub fn pull_cols(&self, ctx: &mut SimCtx, row: u32, cols: &[u64]) -> Vec<f64> {
        if cols.is_empty() {
            return Vec::new();
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        if !self.is_column() {
            let owner = self.route.resolve(self.plan.row_owner(row));
            let req = PullReq {
                id: self.id,
                row,
                cols: ColsSel::List(Arc::new(cols.to_vec())),
                value_bytes: self.value_bytes,
            };
            let bytes = HDR + 4 * cols.len() as u64;
            return ctx.call(owner, tags::PULL, req, bytes).downcast();
        }
        // Split by server range; cols are sorted so each chunk is contiguous.
        let mut reqs = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new(); // [start, end) into cols
        let ranges = self.plan.column_ranges();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let srv = self.route.resolve(slot);
            let start = i;
            while i < cols.len() && cols[i] < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<u64> = cols[start..i].to_vec();
                let bytes = HDR + 4 * chunk.len() as u64;
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::List(Arc::new(chunk)),
                    value_bytes: self.value_bytes,
                };
                reqs.push((srv, tags::PULL, Box::new(req) as Box<dyn Any + Send>, bytes));
                spans.push((start, i));
            }
        }
        let replies = ctx.call_many(reqs);
        let mut out = vec![0.0; cols.len()];
        for (env, (start, end)) in replies.into_iter().zip(spans) {
            let values = env.downcast::<Vec<f64>>();
            out[start..end].copy_from_slice(&values);
        }
        out
    }

    /// Ranged pull: the contiguous columns `[lo, hi)` of a row — the dense
    /// worker-slice access the pull/push-only model-update path uses.
    pub fn pull_range(&self, ctx: &mut SimCtx, row: u32, lo: u64, hi: u64) -> Vec<f64> {
        assert!(lo <= hi && hi <= self.dim());
        if lo == hi {
            return Vec::new();
        }
        if !self.is_column() {
            let owner = self.route.resolve(self.plan.row_owner(row));
            let req = PullReq {
                id: self.id,
                row,
                cols: ColsSel::Range(lo, hi),
                value_bytes: self.value_bytes,
            };
            return ctx.call(owner, tags::PULL, req, HDR + 16).downcast();
        }
        let pieces = self.plan.locate_range(lo, hi);
        let reqs = pieces
            .iter()
            .map(|&(plo, phi, slot)| {
                let srv = self.route.resolve(slot);
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::Range(plo, phi),
                    value_bytes: self.value_bytes,
                };
                (
                    srv,
                    tags::PULL,
                    Box::new(req) as Box<dyn Any + Send>,
                    HDR + 16,
                )
            })
            .collect();
        let replies = ctx.call_many(reqs);
        let mut out = Vec::with_capacity((hi - lo) as usize);
        for env in replies {
            out.extend(env.downcast::<Vec<f64>>());
        }
        debug_assert_eq!(out.len() as u64, hi - lo);
        out
    }

    // ---- row access: push (add) --------------------------------------------

    /// Dense additive push of a full row, split across servers.
    pub fn push_dense(&self, ctx: &mut SimCtx, row: u32, values: &[f64]) {
        assert_eq!(values.len() as u64, self.dim());
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let reqs = self
                    .plan
                    .column_ranges()
                    .into_iter()
                    .map(|(slot, lo, hi)| {
                        let srv = self.route.resolve(slot);
                        let seg: Vec<f64> = values[lo as usize..hi as usize].to_vec();
                        let bytes = HDR + self.value_bytes * seg.len() as u64;
                        let req = PushReq {
                            id: self.id,
                            row,
                            data: PushData::DenseSeg {
                                lo,
                                values: Arc::new(seg),
                            },
                        };
                        (srv, tags::PUSH, Box::new(req) as Box<dyn Any + Send>, bytes)
                    })
                    .collect();
                let _ = ctx.call_many(reqs);
            }
            PlanKind::Row { .. } => {
                let owner = self.route.resolve(self.plan.row_owner(row));
                let bytes = HDR + self.value_bytes * values.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::DenseSeg {
                        lo: 0,
                        values: Arc::new(values.to_vec()),
                    },
                };
                let _ = ctx.call(owner, tags::PUSH, req, bytes);
            }
        }
    }

    /// Dense additive push of the contiguous columns `[lo, lo+values.len())`
    /// of a row, split across the owning servers.
    pub fn push_dense_range(&self, ctx: &mut SimCtx, row: u32, lo: u64, values: &[f64]) {
        let hi = lo + values.len() as u64;
        assert!(hi <= self.dim());
        if values.is_empty() {
            return;
        }
        if !self.is_column() {
            let owner = self.route.resolve(self.plan.row_owner(row));
            let bytes = HDR + self.value_bytes * values.len() as u64;
            let req = PushReq {
                id: self.id,
                row,
                data: PushData::DenseSeg {
                    lo,
                    values: Arc::new(values.to_vec()),
                },
            };
            let _ = ctx.call(owner, tags::PUSH, req, bytes);
            return;
        }
        let reqs = self
            .plan
            .locate_range(lo, hi)
            .into_iter()
            .map(|(plo, phi, slot)| {
                let srv = self.route.resolve(slot);
                let seg: Vec<f64> =
                    values[(plo - lo) as usize..(phi - lo) as usize].to_vec();
                let bytes = HDR + self.value_bytes * seg.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::DenseSeg {
                        lo: plo,
                        values: Arc::new(seg),
                    },
                };
                (srv, tags::PUSH, Box::new(req) as Box<dyn Any + Send>, bytes)
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Sparse additive push (`(column, delta)` pairs, sorted by column).
    pub fn push_sparse(&self, ctx: &mut SimCtx, row: u32, pairs: &[(u64, f64)]) {
        if pairs.is_empty() {
            return;
        }
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let per_pair = 4 + self.value_bytes;
        if !self.is_column() {
            let owner = self.route.resolve(self.plan.row_owner(row));
            let bytes = HDR + per_pair * pairs.len() as u64;
            let req = PushReq {
                id: self.id,
                row,
                data: PushData::Sparse(Arc::new(pairs.to_vec())),
            };
            let _ = ctx.call(owner, tags::PUSH, req, bytes);
            return;
        }
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let srv = self.route.resolve(slot);
            let start = i;
            while i < pairs.len() && pairs[i].0 < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<(u64, f64)> = pairs[start..i].to_vec();
                let bytes = HDR + per_pair * chunk.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::Sparse(Arc::new(chunk)),
                };
                reqs.push((srv, tags::PUSH, Box::new(req) as Box<dyn Any + Send>, bytes));
            }
        }
        let _ = ctx.call_many(reqs);
    }

    // ---- row access: aggregations -------------------------------------------

    /// Row aggregation (`sum`, `nnz`, `norm2`, `max`) computed server-side;
    /// only one scalar per server crosses the network.
    pub fn agg(&self, ctx: &mut SimCtx, row: u32, kind: AggKind) -> f64 {
        let servers = self.row_servers(row);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = AggReq {
                    id: self.id,
                    row,
                    kind,
                };
                (srv, tags::AGG, Box::new(req) as Box<dyn Any + Send>, HDR)
            })
            .collect();
        let partials: Vec<f64> = ctx
            .call_many(reqs)
            .into_iter()
            .map(|env| env.downcast::<f64>())
            .collect();
        match kind {
            AggKind::Max => partials.into_iter().fold(f64::NEG_INFINITY, f64::max),
            _ => partials.into_iter().sum(),
        }
    }

    pub fn sum(&self, ctx: &mut SimCtx, row: u32) -> f64 {
        self.agg(ctx, row, AggKind::Sum)
    }

    pub fn nnz(&self, ctx: &mut SimCtx, row: u32) -> u64 {
        self.agg(ctx, row, AggKind::Nnz) as u64
    }

    pub fn norm2(&self, ctx: &mut SimCtx, row: u32) -> f64 {
        self.agg(ctx, row, AggKind::Norm2Sq).sqrt()
    }

    // ---- column access: server-side computation --------------------------------

    /// Dot product of two rows of this matrix, computed server-side over
    /// co-located segments; only partial scalars travel.
    pub fn dot(&self, ctx: &mut SimCtx, row_a: u32, row_b: u32) -> f64 {
        let servers = self.col_op_servers(&[row_a, row_b]);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = DotReq {
                    id: self.id,
                    row_a,
                    row_b,
                };
                (srv, tags::DOT, Box::new(req) as Box<dyn Any + Send>, HDR)
            })
            .collect();
        ctx.call_many(reqs)
            .into_iter()
            .map(|env| env.downcast::<f64>())
            .sum()
    }

    /// `dst += alpha * src`, server-side.
    pub fn axpy(&self, ctx: &mut SimCtx, dst_row: u32, src_row: u32, alpha: f64) {
        let servers = self.col_op_servers(&[dst_row, src_row]);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = AxpyReq {
                    id: self.id,
                    dst_row,
                    src_row,
                    alpha,
                };
                (srv, tags::AXPY, Box::new(req) as Box<dyn Any + Send>, HDR)
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// `dst = a op b`, element-wise, server-side.
    pub fn elem(&self, ctx: &mut SimCtx, dst_row: u32, a_row: u32, b_row: u32, op: ElemOp) {
        let servers = self.col_op_servers(&[dst_row, a_row, b_row]);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = ElemReq {
                    id: self.id,
                    dst_row,
                    a_row,
                    b_row,
                    op,
                };
                (srv, tags::ELEM, Box::new(req) as Box<dyn Any + Send>, HDR)
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Server-side multi-row update: on every server, `f` receives mutable
    /// co-located segments of `rows` (paper Figure 3's `zip(..).mapPartition`).
    /// `flops_per_elem` drives the simulated compute charge.
    pub fn zip(&self, ctx: &mut SimCtx, rows: &[u32], f: ZipMutFn, flops_per_elem: u64) {
        let servers = self.col_op_servers(rows);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = ZipReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                let bytes = HDR + 64; // UDF handle + row list
                (srv, tags::ZIP, Box::new(req) as Box<dyn Any + Send>, bytes)
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Server-side read-only fold over co-located segments: returns `f`'s
    /// per-range partials combined with `combine` (e.g. `f64::max` for GBDT
    /// split finding, `+` for losses).
    pub fn zip_map(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        f: ZipMapFn,
        flops_per_elem: u64,
        init: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        let servers = self.col_op_servers(rows);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = ZipMapReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                let bytes = HDR + 64;
                (srv, tags::ZIP_MAP, Box::new(req) as Box<dyn Any + Send>, bytes)
            })
            .collect();
        let mut acc = init;
        for env in ctx.call_many(reqs) {
            for p in env.downcast::<Vec<f64>>() {
                acc = combine(acc, p);
            }
        }
        acc
    }

    /// Server-side argmax scan: `f` maps each server's co-located segments
    /// to its best `(score, global index)`; the overall best (max score,
    /// ties to the smaller index) is returned. GBDT split finding runs this
    /// over the gradient/hessian histograms (paper §5.2.3).
    pub fn zip_argmax(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        f: crate::protocol::ZipArgmaxFn,
        flops_per_elem: u64,
    ) -> (f64, u64) {
        let servers = self.col_op_servers(rows);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = crate::protocol::ZipArgmaxReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                let bytes = HDR + 64;
                (
                    srv,
                    tags::ZIP_ARGMAX,
                    Box::new(req) as Box<dyn Any + Send>,
                    bytes,
                )
            })
            .collect();
        let mut best = (f64::NEG_INFINITY, u64::MAX);
        for env in ctx.call_many(reqs) {
            for (score, idx) in env.downcast::<Vec<(f64, u64)>>() {
                if score > best.0 || (score == best.0 && idx < best.1) {
                    best = (score, idx);
                }
            }
        }
        best
    }

    /// Set every element of a row to `value`.
    pub fn fill(&self, ctx: &mut SimCtx, row: u32, value: f64) {
        let servers = self.row_servers(row);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = FillReq {
                    id: self.id,
                    row,
                    value,
                };
                (srv, tags::FILL, Box::new(req) as Box<dyn Any + Send>, HDR)
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    pub fn zero(&self, ctx: &mut SimCtx, row: u32) {
        self.fill(ctx, row, 0.0);
    }

    /// `row *= alpha`, server-side.
    pub fn scale(&self, ctx: &mut SimCtx, row: u32, alpha: f64) {
        let servers = self.row_servers(row);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = ScaleReq {
                    id: self.id,
                    row,
                    alpha,
                };
                (srv, tags::SCALE, Box::new(req) as Box<dyn Any + Send>, HDR)
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    // ---- batched ops (DeepWalk's per-pair pattern, amortized) -------------------

    /// Many server-side dot products in **one request per server** (the
    /// Angel-style batched psFunc: DeepWalk issues one per mini-batch).
    /// Result `i` is the dot of `pairs[i]`.
    pub fn dot_many(&self, ctx: &mut SimCtx, pairs: &[(u32, u32)]) -> Vec<f64> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let servers = self.col_op_servers(&[pairs[0].0]);
        let pairs_arc = Arc::new(pairs.to_vec());
        let req_bytes = HDR + 8 * pairs.len() as u64;
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = crate::protocol::DotBatchReq {
                    id: self.id,
                    pairs: Arc::clone(&pairs_arc),
                };
                (
                    srv,
                    tags::DOT_BATCH,
                    Box::new(req) as Box<dyn Any + Send>,
                    req_bytes,
                )
            })
            .collect();
        let replies = ctx.call_many(reqs);
        let mut out = vec![0.0; pairs.len()];
        for env in replies {
            for (acc, p) in out.iter_mut().zip(env.downcast::<Vec<f64>>()) {
                *acc += p;
            }
        }
        out
    }

    /// Many independent server-side zips in one request per server. Each
    /// job's closure typically captures one scalar coefficient, accounted
    /// at 16 bytes per job on the wire.
    pub fn zip_many(
        &self,
        ctx: &mut SimCtx,
        jobs: Vec<(Vec<u32>, ZipMutFn)>,
        flops_per_elem: u64,
    ) {
        if jobs.is_empty() {
            return;
        }
        let servers = self.col_op_servers(&[jobs[0].0[0]]);
        let rows_total: u64 = jobs.iter().map(|(r, _)| r.len() as u64).sum();
        let req_bytes = HDR + 16 * jobs.len() as u64 + 4 * rows_total;
        let jobs_arc = Arc::new(jobs);
        let reqs = servers
            .iter()
            .map(|&srv| {
                let req = crate::protocol::ZipBatchReq {
                    id: self.id,
                    jobs: Arc::clone(&jobs_arc),
                    flops_per_elem,
                };
                (
                    srv,
                    tags::ZIP_BATCH,
                    Box::new(req) as Box<dyn Any + Send>,
                    req_bytes,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Pull many full dense rows in one request per server. Result `i` is
    /// `rows[i]`'s values.
    pub fn pull_rows(&self, ctx: &mut SimCtx, rows: &[u32]) -> Vec<Vec<f64>> {
        if rows.is_empty() {
            return Vec::new();
        }
        assert!(self.is_column(), "pull_rows requires column partitioning");
        let mut slots: Vec<usize> = self
            .plan
            .column_ranges()
            .iter()
            .map(|&(s, _, _)| s)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        let rows_arc = Arc::new(rows.to_vec());
        let req_bytes = HDR + 4 * rows.len() as u64;
        let reqs = slots
            .iter()
            .map(|&slot| {
                let srv = self.route.resolve(slot);
                let req = crate::protocol::PullRowsReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    value_bytes: self.value_bytes,
                };
                (
                    srv,
                    tags::PULL_ROWS,
                    Box::new(req) as Box<dyn Any + Send>,
                    req_bytes,
                )
            })
            .collect();
        let replies = ctx.call_many(reqs);
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; self.dim() as usize]; rows.len()];
        for (&slot, env) in slots.iter().zip(replies) {
            let per_row = env.downcast::<Vec<Vec<Vec<f64>>>>();
            let slot_ranges = self.plan.ranges_of(slot);
            for (row_out, segs) in out.iter_mut().zip(per_row) {
                for (&(lo, hi), seg) in slot_ranges.iter().zip(segs) {
                    row_out[lo as usize..hi as usize].copy_from_slice(&seg);
                    debug_assert_eq!(seg.len() as u64, hi - lo);
                }
            }
        }
        out
    }

    /// Dense additive push of many full rows in one request per server.
    pub fn push_dense_many(&self, ctx: &mut SimCtx, updates: &[(u32, Vec<f64>)]) {
        if updates.is_empty() {
            return;
        }
        assert!(self.is_column(), "push_dense_many requires column partitioning");
        let ranges = self.plan.column_ranges();
        let rows_arc = Arc::new(updates.iter().map(|(r, _)| *r).collect::<Vec<u32>>());
        let reqs = ranges
            .iter()
            .map(|&(slot, lo, hi)| {
                let srv = self.route.resolve(slot);
                let segs: Vec<Vec<f64>> = updates
                    .iter()
                    .map(|(_, values)| values[lo as usize..hi as usize].to_vec())
                    .collect();
                let cells: u64 = segs.iter().map(|s| s.len() as u64).sum();
                let bytes = HDR + 4 * segs.len() as u64 + self.value_bytes * cells;
                let req = crate::protocol::PushRowsReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    lo,
                    segs: Arc::new(segs),
                };
                (
                    srv,
                    tags::PUSH_ROWS,
                    Box::new(req) as Box<dyn Any + Send>,
                    bytes,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    // ---- block access (LDA's by-column pattern) --------------------------------

    /// Pull the `rows × cols` block, `[col][row]`-ordered. Under column
    /// partitioning all rows of one column are co-located, so each column
    /// costs exactly one server's reply.
    pub fn pull_block(&self, ctx: &mut SimCtx, rows: &[u32], cols: &[u64]) -> Vec<Vec<f64>> {
        assert!(self.is_column(), "pull_block requires column partitioning");
        if cols.is_empty() {
            return Vec::new();
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let rows_arc = Arc::new(rows.to_vec());
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut spans = Vec::new();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let srv = self.route.resolve(slot);
            let start = i;
            while i < cols.len() && cols[i] < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<u64> = cols[start..i].to_vec();
                let bytes = HDR + 4 * chunk.len() as u64 + 4 * rows.len() as u64;
                let req = PullBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    cols: Arc::new(chunk),
                    value_bytes: self.value_bytes,
                };
                reqs.push((srv, tags::PULL_BLOCK, Box::new(req) as Box<dyn Any + Send>, bytes));
                spans.push((start, i));
            }
        }
        let replies = ctx.call_many(reqs);
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
        for (env, (start, end)) in replies.into_iter().zip(spans) {
            let block = env.downcast::<Vec<Vec<f64>>>();
            for (slot, col_vals) in out[start..end].iter_mut().zip(block) {
                *slot = col_vals;
            }
        }
        out
    }

    /// Additive block push: `updates[(col, deltas aligned with rows)]`,
    /// sorted by column.
    pub fn push_block(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        assert!(self.is_column(), "push_block requires column partitioning");
        if updates.is_empty() {
            return;
        }
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0));
        let rows_arc = Arc::new(rows.to_vec());
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut i = 0usize;
        let per_cell = self.value_bytes;
        for &(slot, _lo, hi) in &ranges {
            let srv = self.route.resolve(slot);
            let start = i;
            while i < updates.len() && updates[i].0 < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<(u64, Vec<f64>)> = updates[start..i].to_vec();
                let cells: u64 = chunk.iter().map(|(_, d)| d.len() as u64).sum();
                let bytes = HDR + 4 * chunk.len() as u64 + per_cell * cells;
                let req = PushBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    updates: Arc::new(chunk),
                };
                reqs.push((srv, tags::PUSH_BLOCK, Box::new(req) as Box<dyn Any + Send>, bytes));
            }
        }
        let _ = ctx.call_many(reqs);
    }

    /// Per-key block pulls: one request per column, all concurrently in
    /// flight (an *asynchronous* pull/push store's access pattern — no
    /// batched block protocol). Same result as [`MatrixHandle::pull_block`],
    /// different cost: per-request headers for every key.
    pub fn pull_cols_per_key(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        cols: &[u64],
    ) -> Vec<Vec<f64>> {
        assert!(self.is_column(), "pull_cols_per_key requires column partitioning");
        if cols.is_empty() {
            return Vec::new();
        }
        let rows_arc = Arc::new(rows.to_vec());
        let reqs = cols
            .iter()
            .map(|&c| {
                let srv = self.route.resolve(self.plan.col_owner(c));
                let req = PullBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    cols: Arc::new(vec![c]),
                    value_bytes: self.value_bytes,
                };
                (
                    srv,
                    tags::PULL_BLOCK,
                    Box::new(req) as Box<dyn Any + Send>,
                    HDR + 4 + 4 * rows.len() as u64,
                )
            })
            .collect();
        ctx.call_many(reqs)
            .into_iter()
            .map(|env| {
                env.downcast::<Vec<Vec<f64>>>()
                    .into_iter()
                    .next()
                    .expect("one column per reply")
            })
            .collect()
    }

    /// Per-key additive pushes, dual of [`MatrixHandle::pull_cols_per_key`]:
    /// one request per updated column, all concurrently in flight.
    pub fn push_cols_per_key(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        updates: &[(u64, Vec<f64>)],
    ) {
        assert!(self.is_column(), "push_cols_per_key requires column partitioning");
        if updates.is_empty() {
            return;
        }
        let rows_arc = Arc::new(rows.to_vec());
        let per_cell = self.value_bytes;
        let reqs = updates
            .iter()
            .map(|(c, deltas)| {
                let srv = self.route.resolve(self.plan.col_owner(*c));
                let bytes = HDR + 4 + per_cell * deltas.len() as u64;
                let req = PushBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    updates: Arc::new(vec![(*c, deltas.clone())]),
                };
                (
                    srv,
                    tags::PUSH_BLOCK,
                    Box::new(req) as Box<dyn Any + Send>,
                    bytes,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    // ---- cross-matrix ops (the Figure 4 story) -----------------------------------

    /// Dot between `self[row_self]` and `other[row_other]`.
    ///
    /// Co-located: runs like [`MatrixHandle::dot`] — no server↔server bytes.
    /// Misaligned: each of `self`'s servers fetches the matching remote
    /// segments before multiplying, paying the shuffle the paper's Figure 4
    /// warns about. Requests are issued sequentially to keep server↔server
    /// fetches acyclic.
    pub fn cross_dot(
        &self,
        ctx: &mut SimCtx,
        other: &MatrixHandle,
        row_self: u32,
        row_other: u32,
    ) -> f64 {
        assert_eq!(self.dim(), other.dim());
        assert!(self.is_column() && other.is_column());
        let mut acc = 0.0;
        for (slot, lo, hi) in self.plan.column_ranges() {
            let srv = self.route.resolve(slot);
            let pieces = if self.colocated_with(other) {
                vec![(lo, hi, srv)]
            } else {
                other
                    .plan
                    .locate_range(lo, hi)
                    .into_iter()
                    .map(|(a, b, s)| (a, b, other.route.resolve(s)))
                    .collect()
            };
            let req = CrossDotReq {
                local_id: self.id,
                local_row: row_self,
                remote_id: other.id,
                remote_row: row_other,
                pieces,
                value_bytes: other.value_bytes,
            };
            let partial: f64 = ctx.call(srv, tags::CROSS_DOT, req, HDR + 24).downcast();
            acc += partial;
        }
        acc
    }

    /// `self[dst_row] = self[dst_row] op other[src_row]`, handling
    /// misaligned layouts by server↔server fetches (sequential, see
    /// [`MatrixHandle::cross_dot`]).
    pub fn cross_elem(
        &self,
        ctx: &mut SimCtx,
        other: &MatrixHandle,
        dst_row: u32,
        src_row: u32,
        op: ElemOp,
    ) {
        assert_eq!(self.dim(), other.dim());
        assert!(self.is_column() && other.is_column());
        for (slot, lo, hi) in self.plan.column_ranges() {
            let srv = self.route.resolve(slot);
            let pieces = if self.colocated_with(other) {
                vec![(lo, hi, srv)]
            } else {
                other
                    .plan
                    .locate_range(lo, hi)
                    .into_iter()
                    .map(|(a, b, s)| (a, b, other.route.resolve(s)))
                    .collect()
            };
            let req = CrossElemReq {
                dst_id: self.id,
                dst_row,
                src_id: other.id,
                src_row,
                op,
                pieces,
                value_bytes: other.value_bytes,
            };
            let _ = ctx.call(srv, tags::CROSS_ELEM, req, HDR + 24);
        }
    }

    // ---- routing helpers -----------------------------------------------------

    /// Servers that hold any part of `row`.
    fn row_servers(&self, row: u32) -> Vec<ProcId> {
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let mut slots: Vec<usize> =
                    self.plan.column_ranges().iter().map(|&(s, _, _)| s).collect();
                slots.dedup();
                slots.into_iter().map(|s| self.route.resolve(s)).collect()
            }
            PlanKind::Row { .. } => vec![self.route.resolve(self.plan.row_owner(row))],
        }
    }

    /// Servers participating in a column op over `rows`; for row plans this
    /// only works when all rows share one owner.
    fn col_op_servers(&self, rows: &[u32]) -> Vec<ProcId> {
        match &self.plan.kind {
            PlanKind::Column { .. } => self.row_servers(rows[0]),
            PlanKind::Row { .. } => {
                let owners: Vec<usize> =
                    rows.iter().map(|&r| self.plan.row_owner(r)).collect();
                assert!(
                    owners.windows(2).all(|w| w[0] == w[1]),
                    "row-partitioned matrices only support column ops on co-owned rows \
                     (the single-point limitation of row partitioning, paper §4.3)"
                );
                vec![self.route.resolve(owners[0])]
            }
        }
    }
}
