//! The PS-client: typed, routed operations on a distributed matrix.
//!
//! A [`MatrixHandle`] is held by workers (inside RDD tasks) and by the
//! coordinator; all its methods scatter requests to the owning servers
//! through the caller's `SimCtx` and gather the replies. Row-access
//! operators parallelize across servers under column partitioning — the
//! paper's fix for the single-point problem — while column-access operators
//! run server-side over co-located segments.
//!
//! ## Fault tolerance
//!
//! Every request is addressed by *slot* and issued through
//! [`MatrixHandle::ps_gather`] / [`MatrixHandle::ps_call`], which bound each
//! attempt with a virtual-time deadline. On a timeout the client compares
//! [`RouteTable`] recovery epochs to tell a *slow* server (epoch unchanged)
//! from a *replaced* one (epoch advanced), re-resolves the slot, and resends
//! the identical payload. Mutating requests carry a per-request `op_id` that
//! servers deduplicate, so a resend racing a slow-but-alive server is
//! applied once. A handle created by the master also carries the shared
//! [`PsFleet`], letting the timed-out client *trigger* dead-server recovery
//! itself instead of waiting for the driver to notice.

use std::any::Any;
use std::sync::Arc;

use ps2_simnet::{Envelope, ProcId, SimCtx, SimTime};

use crate::master::PsFleet;
use crate::plan::{MatrixId, PartitionPlan, PlanKind, RouteTable};
use crate::protocol::{
    tags, AggKind, AggReq, AxpyReq, ColsSel, CrossDotReq, CrossElemReq, DotReq, ElemOp, ElemReq,
    FillReq, PullBlockReq, PullReq, PushBlockReq, PushData, PushReq, ScaleReq, ZipMapFn, ZipMapReq,
    ZipMutFn, ZipReq,
};

/// A handle to one distributed `rows × dim` matrix. Cheap to clone; safe to
/// capture in task closures.
#[derive(Clone)]
pub struct MatrixHandle {
    pub id: MatrixId,
    pub plan: Arc<PartitionPlan>,
    /// Slot → live server process mapping, shared with the master (which
    /// updates it when replacing failed servers).
    pub route: Arc<RouteTable>,
    /// Bytes per parameter on the wire: 8 for raw `f64`, 4 with the paper's
    /// message compression (§6.3.3).
    pub value_bytes: u64,
    /// The shared fleet view, when this handle came from a [`crate::PsMaster`]:
    /// lets a client whose request timed out run dead-server recovery
    /// directly. `None` for hand-assembled handles (tests), which then rely
    /// on someone else updating the route table.
    pub(crate) fleet: Option<Arc<PsFleet>>,
}

/// Request-header wire cost for PS ops.
const HDR: u64 = 48;

/// Straight timeouts tolerated without any route change before a PS op gives
/// up. Each timed-out attempt resends (safe: servers deduplicate mutating
/// ops), so this only trips when a server is unreachable *and* recovery
/// cannot replace it.
const MAX_STALE_ATTEMPTS: u32 = 5;

/// Virtual-time budget for one request attempt before the client suspects
/// the server and re-resolves the route. Generous against ordinary op
/// latency (micro- to milliseconds) so healthy runs never pay it.
fn attempt_timeout() -> SimTime {
    SimTime::from_secs_f64(10.0)
}

impl MatrixHandle {
    pub fn dim(&self) -> u64 {
        self.plan.dim
    }

    pub fn rows(&self) -> u32 {
        self.plan.rows
    }

    fn is_column(&self) -> bool {
        matches!(self.plan.kind, PlanKind::Column { .. })
    }

    /// Whether element-wise server-side ops between `self` and `other` need
    /// no cross-server traffic.
    pub fn colocated_with(&self, other: &MatrixHandle) -> bool {
        self.plan.colocated_with(&other.plan)
    }

    // ---- fault-tolerant request layer ---------------------------------------

    /// Scatter `reqs` (slot-addressed, one shared tag) and gather every
    /// reply, surviving server replacement: attempts are deadline-bounded,
    /// timed-out requests re-resolve their slot through the route table and
    /// resend the identical payload. See the module docs for the protocol.
    ///
    /// Each call is one *op span* in the flight recorder: it records request
    /// count, bytes (request + reply), `rows_touched`, and virtual latency
    /// under `ps.client.op.{name}.*`, and tags every timeout/retry/
    /// re-resolution so recovery activity is visible in the run report.
    fn ps_gather<P: Any + Send + Clone>(
        &self,
        ctx: &mut SimCtx,
        tag: u32,
        reqs: Vec<(usize, P, u64)>,
        rows_touched: u64,
    ) -> Vec<Envelope> {
        let op = tags::name(tag);
        let span_start = ctx.now();
        let mut span_bytes: u64 = 0;
        let n = reqs.len();
        let mut replies: Vec<Option<Envelope>> = (0..n).map(|_| None).collect();
        let mut epoch = self.route.epoch();
        let mut stale_attempts = 0u32;
        let mut reqs_issued = 0u64;
        loop {
            let outstanding: Vec<usize> = (0..n).filter(|&i| replies[i].is_none()).collect();
            if outstanding.is_empty() {
                span_bytes += replies
                    .iter()
                    .map(|e| e.as_ref().expect("gathered reply").bytes)
                    .sum::<u64>();
                ctx.metric_add(&format!("ps.client.op.{op}.count"), 1);
                ctx.metric_add(&format!("ps.client.op.{op}.reqs"), reqs_issued);
                ctx.metric_add(&format!("ps.client.op.{op}.bytes"), span_bytes);
                ctx.metric_add(&format!("ps.client.op.{op}.rows"), rows_touched);
                ctx.metric_observe(
                    &format!("ps.client.op.{op}.latency"),
                    ctx.now() - span_start,
                );
                return replies
                    .into_iter()
                    .map(|e| e.expect("gathered reply"))
                    .collect();
            }
            let batch: Vec<(ProcId, u32, Box<dyn Any + Send>, u64)> = outstanding
                .iter()
                .map(|&i| {
                    let (slot, payload, bytes) = &reqs[i];
                    (
                        self.route.resolve(*slot),
                        tag,
                        Box::new(payload.clone()) as Box<dyn Any + Send>,
                        *bytes,
                    )
                })
                .collect();
            reqs_issued += batch.len() as u64;
            span_bytes += batch.iter().map(|(_, _, _, b)| *b).sum::<u64>();
            let deadline = ctx.now() + attempt_timeout();
            let got = ctx.call_many_deadline(batch, deadline);
            let mut missed = 0u64;
            for (&i, env) in outstanding.iter().zip(got) {
                match env {
                    Some(e) => replies[i] = Some(e),
                    None => missed += 1,
                }
            }
            if missed == 0 {
                continue;
            }
            // Tag the recovery path: how many requests hit their attempt
            // deadline, and that a retry round is about to resend them.
            ctx.metric_add("ps.client.timeouts", missed);
            ctx.metric_add("ps.client.retries", 1);
            // At least one slot missed the deadline: its server is slow,
            // dead, or already replaced. If nobody has flipped the route
            // yet, try to run recovery from right here — any handle holder
            // may; the fleet single-flights it.
            if self.route.epoch() == epoch {
                if let Some(fleet) = &self.fleet {
                    fleet.recover_dead_servers(ctx);
                }
            }
            let now_epoch = self.route.epoch();
            if now_epoch == epoch {
                // Same epoch: merely slow (resend is deduplicated
                // server-side) — or unreachable and unrecoverable, which
                // must fail loudly rather than spin forever.
                stale_attempts += 1;
                assert!(
                    stale_attempts < MAX_STALE_ATTEMPTS,
                    "PS op tag {tag} on matrix {:?}: {stale_attempts} straight timeouts \
                     with no route change; a server is unreachable and recovery could \
                     not replace it",
                    self.id,
                );
            } else {
                // Replaced: the retry targets a fresh server.
                ctx.metric_add("ps.client.reresolutions", 1);
                stale_attempts = 0;
                epoch = now_epoch;
            }
        }
    }

    /// Single-request form of [`MatrixHandle::ps_gather`].
    fn ps_call<P: Any + Send + Clone>(
        &self,
        ctx: &mut SimCtx,
        slot: usize,
        tag: u32,
        payload: P,
        bytes: u64,
        rows_touched: u64,
    ) -> Envelope {
        self.ps_gather(ctx, tag, vec![(slot, payload, bytes)], rows_touched)
            .pop()
            .expect("one reply for one request")
    }

    // ---- row access: pull -------------------------------------------------

    /// Pull a full dense row, gathering segments from every server in
    /// parallel.
    pub fn pull_row(&self, ctx: &mut SimCtx, row: u32) -> Vec<f64> {
        assert!(row < self.rows());
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let reqs = self
                    .plan
                    .column_ranges()
                    .iter()
                    .map(|&(slot, _, _)| {
                        let req = PullReq {
                            id: self.id,
                            row,
                            cols: ColsSel::All,
                            value_bytes: self.value_bytes,
                        };
                        (slot, req, HDR)
                    })
                    .collect();
                let replies = self.ps_gather(ctx, tags::PULL, reqs, 1);
                let mut out = Vec::with_capacity(self.dim() as usize);
                for env in replies {
                    let segs = env.downcast::<Vec<Vec<f64>>>();
                    for seg in segs {
                        out.extend(seg);
                    }
                }
                debug_assert_eq!(out.len() as u64, self.dim());
                out
            }
            PlanKind::Row { .. } => {
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::All,
                    value_bytes: self.value_bytes,
                };
                let segs: Vec<Vec<f64>> = self
                    .ps_call(ctx, self.plan.row_owner(row), tags::PULL, req, HDR, 1)
                    .downcast();
                segs.into_iter().flatten().collect()
            }
        }
    }

    /// Sparse pull: only the requested columns travel — the mechanism behind
    /// PS2's advantage over Petuum's full-model pulls (§6.3.1). `cols` must
    /// be sorted ascending; values return in the same order.
    pub fn pull_cols(&self, ctx: &mut SimCtx, row: u32, cols: &[u64]) -> Vec<f64> {
        if cols.is_empty() {
            return Vec::new();
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        if !self.is_column() {
            let req = PullReq {
                id: self.id,
                row,
                cols: ColsSel::List(Arc::new(cols.to_vec())),
                value_bytes: self.value_bytes,
            };
            let bytes = HDR + 4 * cols.len() as u64;
            return self
                .ps_call(ctx, self.plan.row_owner(row), tags::PULL, req, bytes, 1)
                .downcast();
        }
        // Split by server range; cols are sorted so each chunk is contiguous.
        let mut reqs = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new(); // [start, end) into cols
        let ranges = self.plan.column_ranges();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < cols.len() && cols[i] < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<u64> = cols[start..i].to_vec();
                let bytes = HDR + 4 * chunk.len() as u64;
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::List(Arc::new(chunk)),
                    value_bytes: self.value_bytes,
                };
                reqs.push((slot, req, bytes));
                spans.push((start, i));
            }
        }
        let replies = self.ps_gather(ctx, tags::PULL, reqs, 1);
        let mut out = vec![0.0; cols.len()];
        for (env, (start, end)) in replies.into_iter().zip(spans) {
            let values = env.downcast::<Vec<f64>>();
            out[start..end].copy_from_slice(&values);
        }
        out
    }

    /// Ranged pull: the contiguous columns `[lo, hi)` of a row — the dense
    /// worker-slice access the pull/push-only model-update path uses.
    pub fn pull_range(&self, ctx: &mut SimCtx, row: u32, lo: u64, hi: u64) -> Vec<f64> {
        assert!(lo <= hi && hi <= self.dim());
        if lo == hi {
            return Vec::new();
        }
        if !self.is_column() {
            let req = PullReq {
                id: self.id,
                row,
                cols: ColsSel::Range(lo, hi),
                value_bytes: self.value_bytes,
            };
            return self
                .ps_call(ctx, self.plan.row_owner(row), tags::PULL, req, HDR + 16, 1)
                .downcast();
        }
        let reqs = self
            .plan
            .locate_range(lo, hi)
            .into_iter()
            .map(|(plo, phi, slot)| {
                let req = PullReq {
                    id: self.id,
                    row,
                    cols: ColsSel::Range(plo, phi),
                    value_bytes: self.value_bytes,
                };
                (slot, req, HDR + 16)
            })
            .collect();
        let replies = self.ps_gather(ctx, tags::PULL, reqs, 1);
        let mut out = Vec::with_capacity((hi - lo) as usize);
        for env in replies {
            out.extend(env.downcast::<Vec<f64>>());
        }
        debug_assert_eq!(out.len() as u64, hi - lo);
        out
    }

    // ---- row access: push (add) --------------------------------------------

    /// Dense additive push of a full row, split across servers.
    pub fn push_dense(&self, ctx: &mut SimCtx, row: u32, values: &[f64]) {
        assert_eq!(values.len() as u64, self.dim());
        match &self.plan.kind {
            PlanKind::Column { .. } => {
                let reqs = self
                    .plan
                    .column_ranges()
                    .into_iter()
                    .map(|(slot, lo, hi)| {
                        let seg: Vec<f64> = values[lo as usize..hi as usize].to_vec();
                        let bytes = HDR + self.value_bytes * seg.len() as u64;
                        let req = PushReq {
                            id: self.id,
                            row,
                            data: PushData::DenseSeg {
                                lo,
                                values: Arc::new(seg),
                            },
                            op_id: ctx.alloc_reply_token(),
                        };
                        (slot, req, bytes)
                    })
                    .collect();
                let _ = self.ps_gather(ctx, tags::PUSH, reqs, 1);
            }
            PlanKind::Row { .. } => {
                let bytes = HDR + self.value_bytes * values.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::DenseSeg {
                        lo: 0,
                        values: Arc::new(values.to_vec()),
                    },
                    op_id: ctx.alloc_reply_token(),
                };
                let _ = self.ps_call(ctx, self.plan.row_owner(row), tags::PUSH, req, bytes, 1);
            }
        }
    }

    /// Dense additive push of the contiguous columns `[lo, lo+values.len())`
    /// of a row, split across the owning servers.
    pub fn push_dense_range(&self, ctx: &mut SimCtx, row: u32, lo: u64, values: &[f64]) {
        let hi = lo + values.len() as u64;
        assert!(hi <= self.dim());
        if values.is_empty() {
            return;
        }
        if !self.is_column() {
            let bytes = HDR + self.value_bytes * values.len() as u64;
            let req = PushReq {
                id: self.id,
                row,
                data: PushData::DenseSeg {
                    lo,
                    values: Arc::new(values.to_vec()),
                },
                op_id: ctx.alloc_reply_token(),
            };
            let _ = self.ps_call(ctx, self.plan.row_owner(row), tags::PUSH, req, bytes, 1);
            return;
        }
        let reqs = self
            .plan
            .locate_range(lo, hi)
            .into_iter()
            .map(|(plo, phi, slot)| {
                let seg: Vec<f64> = values[(plo - lo) as usize..(phi - lo) as usize].to_vec();
                let bytes = HDR + self.value_bytes * seg.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::DenseSeg {
                        lo: plo,
                        values: Arc::new(seg),
                    },
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, bytes)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::PUSH, reqs, 1);
    }

    /// Sparse additive push (`(column, delta)` pairs, sorted by column).
    pub fn push_sparse(&self, ctx: &mut SimCtx, row: u32, pairs: &[(u64, f64)]) {
        if pairs.is_empty() {
            return;
        }
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let per_pair = 4 + self.value_bytes;
        if !self.is_column() {
            let bytes = HDR + per_pair * pairs.len() as u64;
            let req = PushReq {
                id: self.id,
                row,
                data: PushData::Sparse(Arc::new(pairs.to_vec())),
                op_id: ctx.alloc_reply_token(),
            };
            let _ = self.ps_call(ctx, self.plan.row_owner(row), tags::PUSH, req, bytes, 1);
            return;
        }
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < pairs.len() && pairs[i].0 < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<(u64, f64)> = pairs[start..i].to_vec();
                let bytes = HDR + per_pair * chunk.len() as u64;
                let req = PushReq {
                    id: self.id,
                    row,
                    data: PushData::Sparse(Arc::new(chunk)),
                    op_id: ctx.alloc_reply_token(),
                };
                reqs.push((slot, req, bytes));
            }
        }
        let _ = self.ps_gather(ctx, tags::PUSH, reqs, 1);
    }

    // ---- row access: aggregations -------------------------------------------

    /// Row aggregation (`sum`, `nnz`, `norm2`, `max`) computed server-side;
    /// only one scalar per server crosses the network.
    pub fn agg(&self, ctx: &mut SimCtx, row: u32, kind: AggKind) -> f64 {
        let reqs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| {
                let req = AggReq {
                    id: self.id,
                    row,
                    kind,
                };
                (slot, req, HDR)
            })
            .collect();
        let partials: Vec<f64> = self
            .ps_gather(ctx, tags::AGG, reqs, 1)
            .into_iter()
            .map(|env| env.downcast::<f64>())
            .collect();
        match kind {
            AggKind::Max => partials.into_iter().fold(f64::NEG_INFINITY, f64::max),
            _ => partials.into_iter().sum(),
        }
    }

    pub fn sum(&self, ctx: &mut SimCtx, row: u32) -> f64 {
        self.agg(ctx, row, AggKind::Sum)
    }

    pub fn nnz(&self, ctx: &mut SimCtx, row: u32) -> u64 {
        self.agg(ctx, row, AggKind::Nnz) as u64
    }

    pub fn norm2(&self, ctx: &mut SimCtx, row: u32) -> f64 {
        self.agg(ctx, row, AggKind::Norm2Sq).sqrt()
    }

    // ---- column access: server-side computation --------------------------------

    /// Dot product of two rows of this matrix, computed server-side over
    /// co-located segments; only partial scalars travel.
    pub fn dot(&self, ctx: &mut SimCtx, row_a: u32, row_b: u32) -> f64 {
        let reqs = self
            .col_op_slots(&[row_a, row_b])
            .into_iter()
            .map(|slot| {
                let req = DotReq {
                    id: self.id,
                    row_a,
                    row_b,
                };
                (slot, req, HDR)
            })
            .collect();
        self.ps_gather(ctx, tags::DOT, reqs, 2)
            .into_iter()
            .map(|env| env.downcast::<f64>())
            .sum()
    }

    /// `dst += alpha * src`, server-side.
    pub fn axpy(&self, ctx: &mut SimCtx, dst_row: u32, src_row: u32, alpha: f64) {
        let reqs = self
            .col_op_slots(&[dst_row, src_row])
            .into_iter()
            .map(|slot| {
                let req = AxpyReq {
                    id: self.id,
                    dst_row,
                    src_row,
                    alpha,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::AXPY, reqs, 2);
    }

    /// `dst = a op b`, element-wise, server-side.
    pub fn elem(&self, ctx: &mut SimCtx, dst_row: u32, a_row: u32, b_row: u32, op: ElemOp) {
        let reqs = self
            .col_op_slots(&[dst_row, a_row, b_row])
            .into_iter()
            .map(|slot| {
                let req = ElemReq {
                    id: self.id,
                    dst_row,
                    a_row,
                    b_row,
                    op,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::ELEM, reqs, 3);
    }

    /// Server-side multi-row update: on every server, `f` receives mutable
    /// co-located segments of `rows` (paper Figure 3's `zip(..).mapPartition`).
    /// `flops_per_elem` drives the simulated compute charge.
    pub fn zip(&self, ctx: &mut SimCtx, rows: &[u32], f: ZipMutFn, flops_per_elem: u64) {
        let reqs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| {
                let req = ZipReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                    op_id: ctx.alloc_reply_token(),
                };
                let bytes = HDR + 64; // UDF handle + row list
                (slot, req, bytes)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::ZIP, reqs, rows.len() as u64);
    }

    /// Server-side read-only fold over co-located segments: returns `f`'s
    /// per-range partials combined with `combine` (e.g. `f64::max` for GBDT
    /// split finding, `+` for losses).
    pub fn zip_map(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        f: ZipMapFn,
        flops_per_elem: u64,
        init: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        let reqs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| {
                let req = ZipMapReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                (slot, req, HDR + 64)
            })
            .collect();
        let mut acc = init;
        for env in self.ps_gather(ctx, tags::ZIP_MAP, reqs, rows.len() as u64) {
            for p in env.downcast::<Vec<f64>>() {
                acc = combine(acc, p);
            }
        }
        acc
    }

    /// Server-side argmax scan: `f` maps each server's co-located segments
    /// to its best `(score, global index)`; the overall best (max score,
    /// ties to the smaller index) is returned. GBDT split finding runs this
    /// over the gradient/hessian histograms (paper §5.2.3).
    ///
    /// Panics when every server returns an empty partial scan: there is no
    /// argmax to pick, and silently returning a sentinel would let a bogus
    /// split index flow into training.
    pub fn zip_argmax(
        &self,
        ctx: &mut SimCtx,
        rows: &[u32],
        f: crate::protocol::ZipArgmaxFn,
        flops_per_elem: u64,
    ) -> (f64, u64) {
        let reqs = self
            .col_op_slots(rows)
            .into_iter()
            .map(|slot| {
                let req = crate::protocol::ZipArgmaxReq {
                    id: self.id,
                    rows: rows.to_vec(),
                    f: Arc::clone(&f),
                    flops_per_elem,
                };
                (slot, req, HDR + 64)
            })
            .collect();
        let mut best: Option<(f64, u64)> = None;
        for env in self.ps_gather(ctx, tags::ZIP_ARGMAX, reqs, rows.len() as u64) {
            for (score, idx) in env.downcast::<Vec<(f64, u64)>>() {
                best = match best {
                    Some((bs, bi)) if !(score > bs || (score == bs && idx < bi)) => Some((bs, bi)),
                    _ => Some((score, idx)),
                };
            }
        }
        best.unwrap_or_else(|| {
            panic!(
                "zip_argmax on matrix {:?}: every server returned an empty partial \
                 scan, so there is no candidate to pick (empty matrix or broken scan \
                 function?)",
                self.id
            )
        })
    }

    /// Set every element of a row to `value`.
    pub fn fill(&self, ctx: &mut SimCtx, row: u32, value: f64) {
        let reqs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| {
                let req = FillReq {
                    id: self.id,
                    row,
                    value,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::FILL, reqs, 1);
    }

    pub fn zero(&self, ctx: &mut SimCtx, row: u32) {
        self.fill(ctx, row, 0.0);
    }

    /// `row *= alpha`, server-side.
    pub fn scale(&self, ctx: &mut SimCtx, row: u32, alpha: f64) {
        let reqs = self
            .row_slots(row)
            .into_iter()
            .map(|slot| {
                let req = ScaleReq {
                    id: self.id,
                    row,
                    alpha,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, HDR)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::SCALE, reqs, 1);
    }

    // ---- batched ops (DeepWalk's per-pair pattern, amortized) -------------------

    /// Many server-side dot products in **one request per server** (the
    /// Angel-style batched psFunc: DeepWalk issues one per mini-batch).
    /// Result `i` is the dot of `pairs[i]`.
    pub fn dot_many(&self, ctx: &mut SimCtx, pairs: &[(u32, u32)]) -> Vec<f64> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let pairs_arc = Arc::new(pairs.to_vec());
        let req_bytes = HDR + 8 * pairs.len() as u64;
        let reqs = self
            .col_op_slots(&[pairs[0].0])
            .into_iter()
            .map(|slot| {
                let req = crate::protocol::DotBatchReq {
                    id: self.id,
                    pairs: Arc::clone(&pairs_arc),
                };
                (slot, req, req_bytes)
            })
            .collect();
        let replies = self.ps_gather(ctx, tags::DOT_BATCH, reqs, 2 * pairs.len() as u64);
        let mut out = vec![0.0; pairs.len()];
        for env in replies {
            for (acc, p) in out.iter_mut().zip(env.downcast::<Vec<f64>>()) {
                *acc += p;
            }
        }
        out
    }

    /// Many independent server-side zips in one request per server. Each
    /// job's closure typically captures one scalar coefficient, accounted
    /// at 16 bytes per job on the wire.
    pub fn zip_many(&self, ctx: &mut SimCtx, jobs: Vec<(Vec<u32>, ZipMutFn)>, flops_per_elem: u64) {
        if jobs.is_empty() {
            return;
        }
        let first_row = jobs[0].0[0];
        let rows_total: u64 = jobs.iter().map(|(r, _)| r.len() as u64).sum();
        let req_bytes = HDR + 16 * jobs.len() as u64 + 4 * rows_total;
        let jobs_arc = Arc::new(jobs);
        let reqs = self
            .col_op_slots(&[first_row])
            .into_iter()
            .map(|slot| {
                let req = crate::protocol::ZipBatchReq {
                    id: self.id,
                    jobs: Arc::clone(&jobs_arc),
                    flops_per_elem,
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, req_bytes)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::ZIP_BATCH, reqs, rows_total);
    }

    /// Pull many full dense rows in one request per server. Result `i` is
    /// `rows[i]`'s values.
    pub fn pull_rows(&self, ctx: &mut SimCtx, rows: &[u32]) -> Vec<Vec<f64>> {
        if rows.is_empty() {
            return Vec::new();
        }
        assert!(self.is_column(), "pull_rows requires column partitioning");
        let slots = self.column_slots();
        let rows_arc = Arc::new(rows.to_vec());
        let req_bytes = HDR + 4 * rows.len() as u64;
        let reqs = slots
            .iter()
            .map(|&slot| {
                let req = crate::protocol::PullRowsReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    value_bytes: self.value_bytes,
                };
                (slot, req, req_bytes)
            })
            .collect();
        let replies = self.ps_gather(ctx, tags::PULL_ROWS, reqs, rows.len() as u64);
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; self.dim() as usize]; rows.len()];
        for (&slot, env) in slots.iter().zip(replies) {
            let per_row = env.downcast::<Vec<Vec<Vec<f64>>>>();
            let slot_ranges = self.plan.ranges_of(slot);
            for (row_out, segs) in out.iter_mut().zip(per_row) {
                for (&(lo, hi), seg) in slot_ranges.iter().zip(segs) {
                    row_out[lo as usize..hi as usize].copy_from_slice(&seg);
                    debug_assert_eq!(seg.len() as u64, hi - lo);
                }
            }
        }
        out
    }

    /// Dense additive push of many full rows in one request per server.
    pub fn push_dense_many(&self, ctx: &mut SimCtx, updates: &[(u32, Vec<f64>)]) {
        if updates.is_empty() {
            return;
        }
        assert!(
            self.is_column(),
            "push_dense_many requires column partitioning"
        );
        let rows_arc = Arc::new(updates.iter().map(|(r, _)| *r).collect::<Vec<u32>>());
        let reqs = self
            .plan
            .column_ranges()
            .iter()
            .map(|&(slot, lo, hi)| {
                let segs: Vec<Vec<f64>> = updates
                    .iter()
                    .map(|(_, values)| values[lo as usize..hi as usize].to_vec())
                    .collect();
                let cells: u64 = segs.iter().map(|s| s.len() as u64).sum();
                let bytes = HDR + 4 * segs.len() as u64 + self.value_bytes * cells;
                let req = crate::protocol::PushRowsReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    lo,
                    segs: Arc::new(segs),
                    op_id: ctx.alloc_reply_token(),
                };
                (slot, req, bytes)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::PUSH_ROWS, reqs, updates.len() as u64);
    }

    // ---- block access (LDA's by-column pattern) --------------------------------

    /// Pull the `rows × cols` block, `[col][row]`-ordered. Under column
    /// partitioning all rows of one column are co-located, so each column
    /// costs exactly one server's reply.
    pub fn pull_block(&self, ctx: &mut SimCtx, rows: &[u32], cols: &[u64]) -> Vec<Vec<f64>> {
        assert!(self.is_column(), "pull_block requires column partitioning");
        if cols.is_empty() {
            return Vec::new();
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let rows_arc = Arc::new(rows.to_vec());
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut spans = Vec::new();
        let mut i = 0usize;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < cols.len() && cols[i] < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<u64> = cols[start..i].to_vec();
                let bytes = HDR + 4 * chunk.len() as u64 + 4 * rows.len() as u64;
                let req = PullBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    cols: Arc::new(chunk),
                    value_bytes: self.value_bytes,
                };
                reqs.push((slot, req, bytes));
                spans.push((start, i));
            }
        }
        let replies = self.ps_gather(ctx, tags::PULL_BLOCK, reqs, rows.len() as u64);
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
        for (env, (start, end)) in replies.into_iter().zip(spans) {
            let block = env.downcast::<Vec<Vec<f64>>>();
            for (slot, col_vals) in out[start..end].iter_mut().zip(block) {
                *slot = col_vals;
            }
        }
        out
    }

    /// Additive block push: `updates[(col, deltas aligned with rows)]`,
    /// sorted by column.
    pub fn push_block(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        assert!(self.is_column(), "push_block requires column partitioning");
        if updates.is_empty() {
            return;
        }
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0));
        let rows_arc = Arc::new(rows.to_vec());
        let ranges = self.plan.column_ranges();
        let mut reqs = Vec::new();
        let mut i = 0usize;
        let per_cell = self.value_bytes;
        for &(slot, _lo, hi) in &ranges {
            let start = i;
            while i < updates.len() && updates[i].0 < hi {
                i += 1;
            }
            if i > start {
                let chunk: Vec<(u64, Vec<f64>)> = updates[start..i].to_vec();
                let cells: u64 = chunk.iter().map(|(_, d)| d.len() as u64).sum();
                let bytes = HDR + 4 * chunk.len() as u64 + per_cell * cells;
                let req = PushBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    updates: Arc::new(chunk),
                    op_id: ctx.alloc_reply_token(),
                };
                reqs.push((slot, req, bytes));
            }
        }
        let _ = self.ps_gather(ctx, tags::PUSH_BLOCK, reqs, rows.len() as u64);
    }

    /// Per-key block pulls: one request per column, all concurrently in
    /// flight (an *asynchronous* pull/push store's access pattern — no
    /// batched block protocol). Same result as [`MatrixHandle::pull_block`],
    /// different cost: per-request headers for every key.
    pub fn pull_cols_per_key(&self, ctx: &mut SimCtx, rows: &[u32], cols: &[u64]) -> Vec<Vec<f64>> {
        assert!(
            self.is_column(),
            "pull_cols_per_key requires column partitioning"
        );
        if cols.is_empty() {
            return Vec::new();
        }
        let rows_arc = Arc::new(rows.to_vec());
        let reqs = cols
            .iter()
            .map(|&c| {
                let req = PullBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    cols: Arc::new(vec![c]),
                    value_bytes: self.value_bytes,
                };
                (self.plan.col_owner(c), req, HDR + 4 + 4 * rows.len() as u64)
            })
            .collect();
        self.ps_gather(ctx, tags::PULL_BLOCK, reqs, rows.len() as u64)
            .into_iter()
            .map(|env| {
                env.downcast::<Vec<Vec<f64>>>()
                    .into_iter()
                    .next()
                    .expect("one column per reply")
            })
            .collect()
    }

    /// Per-key additive pushes, dual of [`MatrixHandle::pull_cols_per_key`]:
    /// one request per updated column, all concurrently in flight.
    pub fn push_cols_per_key(&self, ctx: &mut SimCtx, rows: &[u32], updates: &[(u64, Vec<f64>)]) {
        assert!(
            self.is_column(),
            "push_cols_per_key requires column partitioning"
        );
        if updates.is_empty() {
            return;
        }
        let rows_arc = Arc::new(rows.to_vec());
        let per_cell = self.value_bytes;
        let reqs = updates
            .iter()
            .map(|(c, deltas)| {
                let bytes = HDR + 4 + per_cell * deltas.len() as u64;
                let req = PushBlockReq {
                    id: self.id,
                    rows: Arc::clone(&rows_arc),
                    updates: Arc::new(vec![(*c, deltas.clone())]),
                    op_id: ctx.alloc_reply_token(),
                };
                (self.plan.col_owner(*c), req, bytes)
            })
            .collect();
        let _ = self.ps_gather(ctx, tags::PUSH_BLOCK, reqs, rows.len() as u64);
    }

    // ---- cross-matrix ops (the Figure 4 story) -----------------------------------

    /// Dot between `self[row_self]` and `other[row_other]`.
    ///
    /// Co-located: runs like [`MatrixHandle::dot`] — no server↔server bytes.
    /// Misaligned: each of `self`'s servers fetches the matching remote
    /// segments before multiplying, paying the shuffle the paper's Figure 4
    /// warns about. Requests are issued sequentially to keep server↔server
    /// fetches acyclic. Retries re-resolve the *local* slot; a remote server
    /// dying mid-fetch is out of scope for client-side recovery (the local
    /// server blocks on it without a deadline).
    pub fn cross_dot(
        &self,
        ctx: &mut SimCtx,
        other: &MatrixHandle,
        row_self: u32,
        row_other: u32,
    ) -> f64 {
        assert_eq!(self.dim(), other.dim());
        assert!(self.is_column() && other.is_column());
        let mut acc = 0.0;
        for (slot, lo, hi) in self.plan.column_ranges() {
            let pieces = if self.colocated_with(other) {
                vec![(lo, hi, self.route.resolve(slot))]
            } else {
                other
                    .plan
                    .locate_range(lo, hi)
                    .into_iter()
                    .map(|(a, b, s)| (a, b, other.route.resolve(s)))
                    .collect()
            };
            let req = CrossDotReq {
                local_id: self.id,
                local_row: row_self,
                remote_id: other.id,
                remote_row: row_other,
                pieces,
                value_bytes: other.value_bytes,
            };
            let partial: f64 = self
                .ps_call(ctx, slot, tags::CROSS_DOT, req, HDR + 24, 2)
                .downcast();
            acc += partial;
        }
        acc
    }

    /// `self[dst_row] = self[dst_row] op other[src_row]`, handling
    /// misaligned layouts by server↔server fetches (sequential, see
    /// [`MatrixHandle::cross_dot`]).
    pub fn cross_elem(
        &self,
        ctx: &mut SimCtx,
        other: &MatrixHandle,
        dst_row: u32,
        src_row: u32,
        op: ElemOp,
    ) {
        assert_eq!(self.dim(), other.dim());
        assert!(self.is_column() && other.is_column());
        for (slot, lo, hi) in self.plan.column_ranges() {
            let pieces = if self.colocated_with(other) {
                vec![(lo, hi, self.route.resolve(slot))]
            } else {
                other
                    .plan
                    .locate_range(lo, hi)
                    .into_iter()
                    .map(|(a, b, s)| (a, b, other.route.resolve(s)))
                    .collect()
            };
            let req = CrossElemReq {
                dst_id: self.id,
                dst_row,
                src_id: other.id,
                src_row,
                op,
                pieces,
                value_bytes: other.value_bytes,
                op_id: ctx.alloc_reply_token(),
            };
            let _ = self.ps_call(ctx, slot, tags::CROSS_ELEM, req, HDR + 24, 2);
        }
    }

    // ---- routing helpers -----------------------------------------------------

    /// Slots owning any part of a column-partitioned matrix, sorted and
    /// de-duplicated. `column_ranges()` is *column*-ordered — for rotated or
    /// hand-built plans that is not slot-ordered, so a bare `dedup()` (which
    /// only merges adjacent repeats) would leave duplicate slots and fan the
    /// same request out twice.
    fn column_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self
            .plan
            .column_ranges()
            .iter()
            .map(|&(s, _, _)| s)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Slots that hold any part of `row`.
    fn row_slots(&self, row: u32) -> Vec<usize> {
        match &self.plan.kind {
            PlanKind::Column { .. } => self.column_slots(),
            PlanKind::Row { .. } => vec![self.plan.row_owner(row)],
        }
    }

    /// Slots participating in a column op over `rows`; for row plans this
    /// only works when all rows share one owner.
    fn col_op_slots(&self, rows: &[u32]) -> Vec<usize> {
        match &self.plan.kind {
            PlanKind::Column { .. } => self.row_slots(rows[0]),
            PlanKind::Row { .. } => {
                let owners: Vec<usize> = rows.iter().map(|&r| self.plan.row_owner(r)).collect();
                assert!(
                    owners.windows(2).all(|w| w[0] == w[1]),
                    "row-partitioned matrices only support column ops on co-owned rows \
                     (the single-point limitation of row partitioning, paper §4.3)"
                );
                vec![owners[0]]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partitioning;
    use ps2_simnet::{SimBuilder, SimError};

    fn bare_handle(plan: PartitionPlan, route: Arc<RouteTable>) -> MatrixHandle {
        MatrixHandle {
            id: MatrixId(1),
            plan: Arc::new(plan),
            route,
            value_bytes: 8,
            fleet: None,
        }
    }

    #[test]
    fn row_slots_are_sorted_and_unique_for_multi_range_plans() {
        // Hand-built plan interleaving two slots over four ranges:
        // column_ranges() yields slots [0, 1, 0, 1] in column order. A bare
        // dedup() (no sort) used to keep all four, fanning each row op out
        // to the same server twice.
        let plan = PartitionPlan {
            dim: 100,
            rows: 1,
            kind: PlanKind::Column {
                boundaries: vec![0, 25, 50, 75, 100],
                assign: vec![0, 1, 0, 1],
            },
        };
        let h = bare_handle(plan, RouteTable::new(vec![ProcId(1), ProcId(2)]));
        assert_eq!(h.row_slots(0), vec![0, 1]);
        assert_eq!(h.col_op_slots(&[0]), vec![0, 1]);
    }

    #[test]
    fn row_slots_on_rotated_plans_stay_sorted() {
        let plan = PartitionPlan::new(90, 1, 3, Partitioning::ColumnRotated(1));
        // column order visits slots [1, 2, 0]; the helper must not depend
        // on visiting order.
        let h = bare_handle(plan, RouteTable::new(vec![ProcId(1), ProcId(2), ProcId(3)]));
        assert_eq!(h.row_slots(0), vec![0, 1, 2]);
    }

    #[test]
    fn zip_argmax_with_no_candidates_panics_with_diagnosis() {
        let mut sim = SimBuilder::new().seed(5).build();
        // A "server" answering every scan with zero candidates — the shape
        // that used to produce a silent (NEG_INFINITY, u64::MAX) sentinel.
        let empty = sim.spawn_daemon("empty-server", |ctx| loop {
            let env = ctx.recv();
            ctx.reply(&env, Vec::<(f64, u64)>::new(), 16);
        });
        sim.spawn("driver", move |ctx| {
            let plan = PartitionPlan::new(10, 1, 1, Partitioning::Column);
            let h = bare_handle(plan, RouteTable::new(vec![empty]));
            let f: crate::protocol::ZipArgmaxFn = Arc::new(|_, lo| (0.0, lo));
            let _ = h.zip_argmax(ctx, &[0], f, 1);
        });
        match sim.run() {
            Err(SimError::ProcPanic { message, .. }) => {
                assert!(
                    message.contains("zip_argmax"),
                    "diagnostic must name the op, got: {message}"
                );
            }
            other => panic!("expected a diagnosed panic, got {other:?}"),
        }
    }
}
