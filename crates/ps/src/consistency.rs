//! Consistency modes and the generalized clock service.
//!
//! The paper evaluates BSP only — every iteration ends with a global
//! barrier. This module promotes the SSP prototype that used to live inside
//! `ps2-ml` into a first-class property of the PS client: a training run
//! picks a [`ConsistencyMode`] and the same worker loop executes under a
//! barrier (BSP), a bounded-staleness gate (SSP), or no gate at all
//! (async).
//!
//! ## The clock protocol
//!
//! A single *clock daemon* tracks one logical clock per worker (iterations
//! completed). Workers speak two request kinds, both routed through the
//! shared request fabric rather than bare `ctx.call` so retries, timeouts
//! and metrics come for free:
//!
//! * **REPORT** `(worker, done)` — idempotent: the daemon takes the max of
//!   the stored and reported clock, so a fabric resend cannot move a clock
//!   backwards.
//! * **WAIT** `(worker, start_iter, bound, op_id)` — permission to start
//!   iteration `t`. The daemon replies once `min_clock ≥ t − bound − 1`,
//!   i.e. the slowest worker is within the bound. The *request* carries the
//!   bound, which keeps the daemon mode-agnostic: BSP is `bound = 0`,
//!   SSP(s) is `bound = s`, and async workers simply never send WAIT.
//!
//! A WAIT may legitimately block far longer than one fabric attempt (it
//! waits on the slowest worker), so a resend of a still-pending WAIT must
//! not double-register: the daemon keys pending waits by worker and
//! replaces the stored envelope with the retry's (the fabric only listens
//! for the newest correlation id). Grants are remembered per worker by
//! `op_id` so a retry that races its own grant is re-answered immediately
//! instead of hanging the fabric.
//!
//! The grant reply carries the minimum clock observed at grant time —
//! that is the witness the staleness-invariant property tests check:
//! `min + bound + 1 ≥ start_iter` at every grant.

use ps2_simnet::fabric::{self, FabricPolicy, StaticRoutes};
use ps2_simnet::{Envelope, ProcId, SimCtx, SimTime};

/// How a training run synchronizes its workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsistencyMode {
    /// Bulk-synchronous: a global barrier after every iteration.
    Bsp,
    /// Stale-synchronous: a worker at iteration `t` may proceed while the
    /// slowest worker is at least at `t − bound − 1`. `bound = 0` is
    /// barrier-equivalent.
    Ssp { bound: u32 },
    /// No synchronization at all: workers free-run and gradients apply in
    /// arrival order.
    Async,
}

/// How many extra iterations an async worker may serve parameters from its
/// local cache before re-pulling. Async has no staleness bound, so the
/// cache needs its own (documented) refresh policy to keep learning sane.
pub const ASYNC_CACHE_TTL: u32 = 2;

impl ConsistencyMode {
    /// Compact label used in bench case names, metric names and traces:
    /// `bsp`, `ssp<bound>`, `async`.
    pub fn label(&self) -> String {
        match self {
            ConsistencyMode::Bsp => "bsp".to_string(),
            ConsistencyMode::Ssp { bound } => format!("ssp{bound}"),
            ConsistencyMode::Async => "async".to_string(),
        }
    }

    /// Parse the CLI spelling: `bsp`, `async`, `ssp:<bound>` (bare `ssp`
    /// means `ssp:1`).
    pub fn parse(s: &str) -> Result<ConsistencyMode, String> {
        match s {
            "bsp" => Ok(ConsistencyMode::Bsp),
            "async" => Ok(ConsistencyMode::Async),
            "ssp" => Ok(ConsistencyMode::Ssp { bound: 1 }),
            other => match other.strip_prefix("ssp:") {
                Some(b) => b
                    .parse()
                    .map(|bound| ConsistencyMode::Ssp { bound })
                    .map_err(|_| format!("bad staleness bound in '{other}'")),
                None => Err(format!(
                    "unknown consistency mode '{other}' (want bsp|ssp:<s>|async)"
                )),
            },
        }
    }

    /// The staleness bound the clock gate enforces; `None` means no gate.
    pub fn bound(&self) -> Option<u32> {
        match self {
            ConsistencyMode::Bsp => Some(0),
            ConsistencyMode::Ssp { bound } => Some(*bound),
            ConsistencyMode::Async => None,
        }
    }

    /// Iterations a cached parameter may be served without a re-pull. Under
    /// BSP the cache is effectively disabled (an entry only survives within
    /// its own iteration), under SSP the bound is the ttl, and async uses
    /// [`ASYNC_CACHE_TTL`].
    pub fn cache_ttl(&self) -> u32 {
        match self {
            ConsistencyMode::Bsp => 0,
            ConsistencyMode::Ssp { bound } => *bound,
            ConsistencyMode::Async => ASYNC_CACHE_TTL,
        }
    }

    /// Whether push(t) may overlap compute(t+1). Only modes that tolerate
    /// staleness can leave an unacknowledged push in flight across the
    /// iteration boundary.
    pub fn pipelined(&self) -> bool {
        match self {
            ConsistencyMode::Bsp => false,
            ConsistencyMode::Ssp { bound } => *bound > 0,
            ConsistencyMode::Async => true,
        }
    }
}

/// Clock-service message tags. They live above the PS op tag space
/// (10..=41); the numbers are the ones the SSP prototype used, kept stable
/// so old traces read the same.
pub mod clock_tags {
    /// Worker reports having *finished* iteration `t`.
    pub const REPORT: u32 = 60;
    /// Worker asks permission to *start* iteration `t`.
    pub const WAIT: u32 = 61;
}

/// WAIT request: may `worker` start `start_iter` under `bound`?
#[derive(Clone, Copy, Debug)]
pub struct ClockWaitReq {
    pub worker: usize,
    pub start_iter: u32,
    pub bound: u32,
    /// Dedup key for fabric resends of a still-blocked or already-granted
    /// wait.
    pub op_id: u64,
}

/// REPORT request: `worker` has completed `done` iterations.
#[derive(Clone, Copy, Debug)]
pub struct ClockReportReq {
    pub worker: usize,
    pub done: u32,
}

/// WAIT reply: the minimum worker clock at the moment the grant was issued
/// — the witness of the staleness invariant.
#[derive(Clone, Copy, Debug)]
pub struct ClockGrant {
    pub min_clock: u32,
}

/// Fabric tuning for clock traffic. A WAIT blocks until the slowest worker
/// catches up, which can dwarf any per-message latency, so the attempt
/// timeout is generous (one virtual minute) and many stale attempts are
/// tolerated before declaring the daemon unreachable — together they cover
/// hours of legitimate blocking while keeping the retry machinery (and its
/// `ps.clock.*` metrics) live.
pub fn clock_policy() -> FabricPolicy {
    FabricPolicy {
        attempt_timeout: SimTime::from_secs_f64(60.0),
        max_stale_attempts: 120,
        scope: "ps.clock",
    }
}

/// The clock daemon body: spawn with `sim.spawn_daemon("clock", clock_main(n))`.
pub fn clock_main(workers: usize) -> impl FnOnce(&mut SimCtx) {
    move |ctx: &mut SimCtx| {
        assert!(workers > 0, "clock daemon needs at least one worker");
        // Iterations completed, per worker.
        let mut clocks = vec![0u32; workers];
        // At most one blocked WAIT per worker; a resend replaces the stored
        // envelope so the reply goes to the correlation id the fabric is
        // actually listening on.
        let mut pending: Vec<Option<(Envelope, ClockWaitReq)>> =
            (0..workers).map(|_| None).collect();
        // Last grant per worker, keyed by op_id: a retry racing its own
        // grant is re-answered with the recorded witness.
        let mut granted: Vec<Option<(u64, u32)>> = vec![None; workers];

        let grantable = |clocks: &[u32], req: &ClockWaitReq| {
            let min = *clocks.iter().min().expect("workers > 0");
            // A worker may start iteration t when min >= t - bound - 1.
            (req.start_iter <= min + req.bound + 1).then_some(min)
        };

        loop {
            let env = ctx.recv();
            if env.is_reply() {
                continue; // stray late reply, not for us
            }
            match env.tag {
                clock_tags::REPORT => {
                    let req: ClockReportReq = *env.downcast_ref();
                    // Max, not assignment: resends must not move time backwards.
                    clocks[req.worker] = clocks[req.worker].max(req.done);
                    ctx.reply(&env, (), 8);
                    // Wake every waiter the new minimum unblocks.
                    for w in 0..workers {
                        let Some((_, wreq)) = pending[w].as_ref() else {
                            continue;
                        };
                        if let Some(min) = grantable(&clocks, wreq) {
                            let (wenv, wreq) = pending[w].take().expect("checked above");
                            granted[w] = Some((wreq.op_id, min));
                            ctx.reply(&wenv, ClockGrant { min_clock: min }, 8);
                        }
                    }
                }
                clock_tags::WAIT => {
                    let req: ClockWaitReq = *env.downcast_ref();
                    if let Some((op_id, min)) = granted[req.worker] {
                        if op_id == req.op_id {
                            // Retry of an already-granted wait.
                            ctx.reply(&env, ClockGrant { min_clock: min }, 8);
                            continue;
                        }
                    }
                    match grantable(&clocks, &req) {
                        Some(min) => {
                            granted[req.worker] = Some((req.op_id, min));
                            ctx.reply(&env, ClockGrant { min_clock: min }, 8);
                        }
                        // Fresh wait or resend of a blocked one: (re)store.
                        None => pending[req.worker] = Some((env, req)),
                    }
                }
                other => panic!("clock daemon: unknown tag {other}"),
            }
        }
    }
}

/// A worker's handle on the clock daemon. All traffic goes through the
/// request fabric under [`clock_policy`], so timeouts, identical-payload
/// resends and `ps.clock.*` metrics follow the same rules as PS ops.
#[derive(Clone, Copy, Debug)]
pub struct ClockClient {
    pub proc: ProcId,
    pub worker: usize,
}

impl ClockClient {
    pub fn new(proc: ProcId, worker: usize) -> ClockClient {
        ClockClient { proc, worker }
    }

    /// Block until this worker may start `start_iter` under `bound`.
    /// Returns the minimum worker clock at grant time; the staleness
    /// invariant `min + bound + 1 >= start_iter` holds on every return.
    pub fn wait(&self, ctx: &mut SimCtx, start_iter: u32, bound: u32) -> u32 {
        let req = ClockWaitReq {
            worker: self.worker,
            start_iter,
            bound,
            op_id: ctx.alloc_reply_token(),
        };
        let routes = StaticRoutes(vec![self.proc]);
        let grant: ClockGrant = fabric::call_slot(
            ctx,
            &routes,
            &clock_policy(),
            "wait",
            clock_tags::WAIT,
            0,
            req,
            24,
            1,
        )
        .downcast();
        debug_assert!(
            grant.min_clock + bound + 1 >= start_iter,
            "clock grant violates the staleness bound: min {} bound {bound} start {start_iter}",
            grant.min_clock
        );
        grant.min_clock
    }

    /// Report this worker's clock as at least `done` iterations.
    pub fn report(&self, ctx: &mut SimCtx, done: u32) {
        let req = ClockReportReq {
            worker: self.worker,
            done,
        };
        let routes = StaticRoutes(vec![self.proc]);
        let _ = fabric::call_slot(
            ctx,
            &routes,
            &clock_policy(),
            "report",
            clock_tags::REPORT,
            0,
            req,
            16,
            1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_and_parse_round_trip() {
        for (s, m) in [
            ("bsp", ConsistencyMode::Bsp),
            ("ssp:0", ConsistencyMode::Ssp { bound: 0 }),
            ("ssp:3", ConsistencyMode::Ssp { bound: 3 }),
            ("async", ConsistencyMode::Async),
        ] {
            assert_eq!(ConsistencyMode::parse(s).unwrap(), m);
        }
        assert_eq!(
            ConsistencyMode::parse("ssp").unwrap(),
            ConsistencyMode::Ssp { bound: 1 }
        );
        assert_eq!(ConsistencyMode::Bsp.label(), "bsp");
        assert_eq!(ConsistencyMode::Ssp { bound: 2 }.label(), "ssp2");
        assert_eq!(ConsistencyMode::Async.label(), "async");
        assert!(ConsistencyMode::parse("ssp:x").is_err());
        assert!(ConsistencyMode::parse("eventual").is_err());
    }

    #[test]
    fn mode_policy_table() {
        assert_eq!(ConsistencyMode::Bsp.bound(), Some(0));
        assert_eq!(ConsistencyMode::Ssp { bound: 4 }.bound(), Some(4));
        assert_eq!(ConsistencyMode::Async.bound(), None);
        assert_eq!(ConsistencyMode::Bsp.cache_ttl(), 0);
        assert_eq!(ConsistencyMode::Ssp { bound: 4 }.cache_ttl(), 4);
        assert_eq!(ConsistencyMode::Async.cache_ttl(), ASYNC_CACHE_TTL);
        assert!(!ConsistencyMode::Bsp.pipelined());
        assert!(!ConsistencyMode::Ssp { bound: 0 }.pipelined());
        assert!(ConsistencyMode::Ssp { bound: 1 }.pipelined());
        assert!(ConsistencyMode::Async.pipelined());
    }
}
