//! PS-server and checkpoint-storage processes.

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use ps2_simnet::{Envelope, Proc, ProcId, SimCtx, SimRuntime, SimTime, StepCtx};

use crate::plan::{MatrixId, PartitionPlan, PlanKind};
use crate::protocol::{
    tags, AggKind, AggReq, AxpyReq, CheckpointReq, CreateReq, CrossDotReq, CrossElemReq, DotReq,
    ElemReq, EnvelopeReq, FetchSegReq, FillReq, FreeReq, InitKind, PullBlockReq, PullReq,
    PushBlockReq, PushData, PushReq, RestoreReq, ScaleReq, Snapshot, StoreGetReq, StoreGetResp,
    StorePutReq, ZipMapReq, ZipReq, ZipSegs,
};

/// splitmix64: the deterministic per-element hash behind `InitKind::Uniform`,
/// so initialization is identical no matter which server materializes a cell.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn init_value(init: &InitKind, row: u32, col: u64) -> f64 {
    match init {
        InitKind::Zero => 0.0,
        InitKind::Const(c) => *c,
        InitKind::Uniform { lo, hi, seed } => {
            let h = mix64(seed ^ mix64((row as u64) << 40 ^ col));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }
}

/// One matrix's data on one server.
struct Shard {
    plan: Arc<PartitionPlan>,
    /// Column plans: the ranges this server owns, column order.
    /// Row plans: one pseudo-range `(0, dim)` per owned row.
    ranges: Vec<(u64, u64)>,
    /// Row plans only: which rows the pseudo-ranges belong to.
    owned_rows: Vec<u32>,
    /// `data[row_slot][range_idx]` → dense segment.
    /// Column plans: `row_slot` is the row index (all rows present).
    /// Row plans: `row_slot` indexes `owned_rows`, with one range.
    data: Vec<Vec<Vec<f64>>>,
}

impl Shard {
    fn build(slot: usize, plan: Arc<PartitionPlan>, init: &InitKind) -> Shard {
        match &plan.kind {
            PlanKind::Column { .. } => {
                let ranges = plan.ranges_of(slot);
                let data = (0..plan.rows)
                    .map(|row| {
                        ranges
                            .iter()
                            .map(|&(lo, hi)| (lo..hi).map(|c| init_value(init, row, c)).collect())
                            .collect()
                    })
                    .collect();
                Shard {
                    plan,
                    ranges,
                    owned_rows: Vec::new(),
                    data,
                }
            }
            PlanKind::Row { .. } => {
                let owned_rows: Vec<u32> = (0..plan.rows)
                    .filter(|&r| plan.row_owner(r) == slot)
                    .collect();
                let data = owned_rows
                    .iter()
                    .map(|&row| vec![(0..plan.dim).map(|c| init_value(init, row, c)).collect()])
                    .collect();
                let dim = plan.dim;
                Shard {
                    plan,
                    ranges: vec![(0, dim)],
                    owned_rows,
                    data,
                }
            }
        }
    }

    fn is_column(&self) -> bool {
        matches!(self.plan.kind, PlanKind::Column { .. })
    }

    /// Resolve a row to its slot in `data`; panics if a row plan does not
    /// own the row (a routing bug).
    fn slot(&self, row: u32) -> usize {
        if self.is_column() {
            row as usize
        } else {
            self.owned_rows
                .iter()
                .position(|&r| r == row)
                .unwrap_or_else(|| panic!("row {row} not owned by this server"))
        }
    }

    /// Index of the range containing `col`.
    fn range_of(&self, col: u64) -> (usize, usize) {
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            if col >= lo && col < hi {
                return (i, (col - lo) as usize);
            }
        }
        panic!("column {col} not owned by this server");
    }

    fn get(&self, row: u32, col: u64) -> f64 {
        let slot = self.slot(row);
        let (ri, off) = self.range_of(col);
        self.data[slot][ri][off]
    }

    fn add(&mut self, row: u32, col: u64, delta: f64) {
        let slot = self.slot(row);
        let (ri, off) = self.range_of(col);
        self.data[slot][ri][off] += delta;
    }

    fn owned_cols(&self) -> u64 {
        let per_row: u64 = self.ranges.iter().map(|&(lo, hi)| hi - lo).sum();
        per_row
    }
}

/// Bounded memory of recently applied mutating op ids.
///
/// A client whose push timed out resends it with the same op id; if the
/// original was in fact applied (the server was slow, not dead), the server
/// recognizes the duplicate here, skips the re-apply, and still acknowledges
/// success. The memory is bounded (FIFO eviction), which is safe because a
/// retry of op `k` can only race the handful of ops in flight around `k` —
/// never something [`OP_LOG_CAP`] mutations in the past. A *replacement*
/// server starts with an empty log, so an update that was applied by the
/// dead server *and* retried against the replacement lands twice; that
/// bounded double-push window is the documented recovery tolerance.
struct OpLog {
    seen: HashSet<(MatrixId, u64)>,
    order: VecDeque<(MatrixId, u64)>,
}

const OP_LOG_CAP: usize = 4096;

impl OpLog {
    fn new() -> OpLog {
        OpLog {
            seen: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// True when `(id, op_id)` was already applied; records it otherwise.
    fn check_and_record(&mut self, id: MatrixId, op_id: u64) -> bool {
        let key = (id, op_id);
        if self.seen.contains(&key) {
            return true;
        }
        if self.order.len() == OP_LOG_CAP {
            let oldest = self.order.pop_front().expect("cap > 0");
            self.seen.remove(&oldest);
        }
        self.order.push_back(key);
        self.seen.insert(key);
        false
    }
}

/// Row-touch counters are only kept for matrices this small: envelope
/// coalescing lowers `pull_rows`/`push_dense_many` to per-row subs, and
/// embedding tables with thousands of rows would otherwise mint a metric
/// name per vertex.
const ROW_TOUCH_MAX_ROWS: u32 = 64;

/// The `(matrix, op_id)` dedup key of a mutating request; `None` for
/// read-only requests, which are harmless to re-execute. Works on the bare
/// payload so envelope sub-requests dedup exactly like bare ones.
fn mutation_key(tag: u32, payload: &dyn Any) -> Option<(MatrixId, u64)> {
    match tag {
        tags::PUSH => {
            let r: &PushReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::AXPY => {
            let r: &AxpyReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::ELEM => {
            let r: &ElemReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::ZIP => {
            let r: &ZipReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::FILL => {
            let r: &FillReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::SCALE => {
            let r: &ScaleReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::PUSH_BLOCK => {
            let r: &PushBlockReq = cast(tag, payload);
            Some((r.id, r.op_id))
        }
        tags::CROSS_ELEM => {
            let r: &CrossElemReq = cast(tag, payload);
            Some((r.dst_id, r.op_id))
        }
        _ => None,
    }
}

/// The PS-server loop: stores shards, executes row- and column-access ops.
///
/// Each request records its queue time (arrival → dequeue: how long it sat
/// behind earlier work) and service time (dequeue → reply sent) into
/// per-variant histograms `ps.server.{op}.queue` / `.service`.
/// The slice of a simulation context the request handlers need, so one
/// `execute` serves both server flavors: the classic thread server
/// ([`ps_server_main`], blocking `recv` loop on a [`SimCtx`]) and the
/// steppable [`PsServerAgent`] (stepped inline on a [`StepCtx`], no OS
/// thread — the flavor serving scenarios use to stand up large fleets).
pub(crate) trait ServerCtx {
    fn id(&self) -> ProcId;
    fn charge_flops(&mut self, flops: u64);
    fn charge_mem(&mut self, bytes: u64);
    fn metric_add(&mut self, name: &str, delta: u64);
    fn trace_mark_with(&mut self, label: &'static str, payload: u64);
    fn op_label(&mut self, label: &'static str);
    fn reply_boxed(&mut self, request: &Envelope, payload: Box<dyn Any + Send>, bytes: u64);
    /// Blocking mid-request RPC (cross-matrix segment fetches, checkpoint
    /// storage I/O). Only the thread server supports it; the steppable
    /// server panics, which is fine for serving fleets that only see
    /// CREATE/PULL-family traffic.
    fn call<P: Any + Send>(&mut self, dst: ProcId, tag: u32, payload: P, bytes: u64) -> Envelope;
}

impl ServerCtx for SimCtx {
    fn id(&self) -> ProcId {
        SimCtx::id(self)
    }
    fn charge_flops(&mut self, flops: u64) {
        SimCtx::charge_flops(self, flops)
    }
    fn charge_mem(&mut self, bytes: u64) {
        SimCtx::charge_mem(self, bytes)
    }
    fn metric_add(&mut self, name: &str, delta: u64) {
        SimCtx::metric_add(self, name, delta)
    }
    fn trace_mark_with(&mut self, label: &'static str, payload: u64) {
        SimCtx::trace_mark_with(self, label, payload)
    }
    fn op_label(&mut self, label: &'static str) {
        SimCtx::op_label(self, label)
    }
    fn reply_boxed(&mut self, request: &Envelope, payload: Box<dyn Any + Send>, bytes: u64) {
        SimCtx::reply_boxed(self, request, payload, bytes)
    }
    fn call<P: Any + Send>(&mut self, dst: ProcId, tag: u32, payload: P, bytes: u64) -> Envelope {
        SimCtx::call(self, dst, tag, payload, bytes)
    }
}

impl ServerCtx for StepCtx<'_> {
    fn id(&self) -> ProcId {
        StepCtx::id(self)
    }
    fn charge_flops(&mut self, flops: u64) {
        StepCtx::charge_flops(self, flops)
    }
    fn charge_mem(&mut self, bytes: u64) {
        StepCtx::charge_mem(self, bytes)
    }
    fn metric_add(&mut self, name: &str, delta: u64) {
        StepCtx::metric_add(self, name, delta)
    }
    fn trace_mark_with(&mut self, label: &'static str, payload: u64) {
        StepCtx::trace_mark_with(self, label, payload)
    }
    fn op_label(&mut self, label: &'static str) {
        StepCtx::op_label(self, label)
    }
    fn reply_boxed(&mut self, request: &Envelope, payload: Box<dyn Any + Send>, bytes: u64) {
        StepCtx::reply_boxed(self, request, payload, bytes)
    }
    fn call<P: Any + Send>(
        &mut self,
        _dst: ProcId,
        tag: u32,
        _payload: P,
        _bytes: u64,
    ) -> Envelope {
        panic!(
            "ps-server (steppable): op tag {} ({}) needs a blocking mid-request \
             RPC, which only the thread server (ps_server_main) supports",
            tag,
            tags::name(tag)
        );
    }
}

/// Steppable PS server: the same handler chain as [`ps_server_main`], run as
/// an event-driven agent with no OS thread. Spawn one per server with
/// [`ps2_simnet::SimRuntime::spawn_agent_daemon`]; it serves every
/// non-blocking op (CREATE, PULL/PUSH and friends, coalesced ENVELOPEs) and
/// panics on the few ops that need mid-request RPCs (CROSS_*, CHECKPOINT,
/// RESTORE).
pub struct PsServerAgent {
    shards: HashMap<MatrixId, Shard>,
    oplog: OpLog,
}

impl Default for PsServerAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl PsServerAgent {
    pub fn new() -> PsServerAgent {
        PsServerAgent {
            shards: HashMap::new(),
            oplog: OpLog::new(),
        }
    }
}

impl Proc for PsServerAgent {
    fn on_message(&mut self, ctx: &mut StepCtx<'_>, env: Envelope) {
        if env.is_reply() {
            // Stray reply from a peer this server never calls; ignore.
            return;
        }
        let op = tags::name(env.tag);
        let t0 = ctx.now();
        let queue = t0.saturating_sub(env.arrival);
        ctx.op_label(op);
        handle(ctx, &mut self.shards, &mut self.oplog, env);
        ctx.op_label_clear();
        ctx.metric_add(&format!("ps.server.p{}.served", StepCtx::id(ctx).0), 1);
        ctx.metric_observe(&format!("ps.server.{op}.queue"), queue);
        ctx.metric_observe(&format!("ps.server.{op}.service"), ctx.now() - t0);
    }
}

pub fn ps_server_main(ctx: &mut SimCtx) {
    let mut shards: HashMap<MatrixId, Shard> = HashMap::new();
    let mut oplog = OpLog::new();
    loop {
        let env = ctx.recv();
        let op = tags::name(env.tag);
        let t0 = ctx.now();
        let queue = t0.saturating_sub(env.arrival);
        // Tag the handler's compute charges with the op so trace analysis
        // can break server busy time down by request kind.
        ctx.op_label(op);
        handle(ctx, &mut shards, &mut oplog, env);
        ctx.op_label_clear();
        // Per-server load counter: the windowed deltas of these feed the
        // watchdog's Gini skew detector across the server fleet.
        ctx.metric_add(&format!("ps.server.p{}.served", ctx.id().0), 1);
        ctx.metric_observe(&format!("ps.server.{op}.queue"), queue);
        ctx.metric_observe(&format!("ps.server.{op}.service"), ctx.now() - t0);
    }
}

fn handle<C: ServerCtx>(
    ctx: &mut C,
    shards: &mut HashMap<MatrixId, Shard>,
    oplog: &mut OpLog,
    env: Envelope,
) {
    if env.tag == tags::ENVELOPE {
        // The coalescing container: run each sub-request as if it had
        // arrived bare — own op label, own dedup check — and ship all the
        // replies back in one message.
        let req: &EnvelopeReq = env.downcast_ref();
        ctx.trace_mark_with("ps.server.envelope", req.op_id);
        let subs = Arc::clone(&req.subs);
        let mut replies: Vec<Box<dyn Any + Send>> = Vec::with_capacity(subs.len());
        let mut bytes = 16u64;
        for (tag, payload, _) in subs.iter() {
            ctx.op_label(tags::name(*tag));
            let (reply, b) = dispatch_one(ctx, shards, oplog, *tag, payload.as_ref());
            replies.push(reply);
            bytes += b;
        }
        ctx.op_label("envelope");
        ctx.reply_boxed(&env, Box::new(replies), bytes);
        return;
    }
    let (reply, bytes) = dispatch_one(ctx, shards, oplog, env.tag, env.payload.as_ref());
    ctx.reply_boxed(&env, reply, bytes);
}

/// Dedup-then-execute for one request, bare or enveloped.
fn dispatch_one<C: ServerCtx>(
    ctx: &mut C,
    shards: &mut HashMap<MatrixId, Shard>,
    oplog: &mut OpLog,
    tag: u32,
    payload: &dyn Any,
) -> (Box<dyn Any + Send>, u64) {
    if let Some((id, op_id)) = mutation_key(tag, payload) {
        if oplog.check_and_record(id, op_id) {
            // Duplicate of an update this server already applied (the client
            // timed out and resent): acknowledge without re-applying.
            return (Box::new(()), 8);
        }
    }
    execute(ctx, shards, tag, payload)
}

fn cast<T: 'static>(tag: u32, payload: &dyn Any) -> &T {
    // Arc-transparent, mirroring `Envelope::downcast_ref`: the fabric ships
    // request payloads as `Arc<T>` so retries resend without deep-cloning.
    payload
        .downcast_ref::<T>()
        .or_else(|| payload.downcast_ref::<std::sync::Arc<T>>().map(|a| &**a))
        .unwrap_or_else(|| panic!("ps-server: payload type mismatch for tag {tag}"))
}

/// Execute one request and return `(reply payload, reply wire bytes)`.
/// Pure of reliability concerns: dedup happened in the caller, the reply is
/// sent by the caller (so envelopes can collect many replies into one
/// message).
fn execute<C: ServerCtx>(
    ctx: &mut C,
    shards: &mut HashMap<MatrixId, Shard>,
    tag: u32,
    payload: &dyn Any,
) -> (Box<dyn Any + Send>, u64) {
    let me = ctx.id();
    match tag {
        tags::CREATE => {
            let req: &CreateReq = cast(tag, payload);
            // Idempotent: fleet recovery replays creates into a replacement
            // server, and the fabric may then re-deliver the original
            // request — rebuilding here would wipe the restored values.
            if let std::collections::hash_map::Entry::Vacant(e) = shards.entry(req.id) {
                let shard = Shard::build(req.slot, Arc::clone(&req.plan), &req.init);
                // Materializing the shard touches every owned element.
                ctx.charge_mem(shard.owned_cols() * shard.data.len() as u64 * 8);
                e.insert(shard);
            }
            (Box::new(()), 8)
        }
        tags::FREE => {
            let req: &FreeReq = cast(tag, payload);
            shards.remove(&req.id);
            (Box::new(()), 8)
        }
        tags::PULL => {
            let req: &PullReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            // Per-matrix hot-row counter (NuPS-style access-skew tracking),
            // bounded-cardinality matrices only.
            if shard.plan.rows <= ROW_TOUCH_MAX_ROWS {
                ctx.metric_add(
                    &format!("ps.server.row_touch.m{}.r{}", req.id.0, req.row),
                    1,
                );
            }
            let shard = shard_of(shards, req.id);
            match &req.cols {
                crate::protocol::ColsSel::All => {
                    let slot = shard.slot(req.row);
                    let segs: Vec<Vec<f64>> = shard.data[slot].clone();
                    let n: u64 = segs.iter().map(|s| s.len() as u64).sum();
                    ctx.charge_mem(n * 8);
                    (Box::new(segs), 16 + n * req.value_bytes)
                }
                crate::protocol::ColsSel::Range(lo, hi) => {
                    let values: Vec<f64> = (*lo..*hi).map(|c| shard.get(req.row, c)).collect();
                    let n = values.len() as u64;
                    ctx.charge_mem(n * 8);
                    (Box::new(values), 16 + n * req.value_bytes)
                }
                crate::protocol::ColsSel::List(cols) => {
                    let values: Vec<f64> = cols.iter().map(|&c| shard.get(req.row, c)).collect();
                    let n = values.len() as u64;
                    ctx.charge_mem(n * 16);
                    (Box::new(values), 16 + n * req.value_bytes)
                }
            }
        }
        tags::PUSH => {
            let req: &PushReq = cast(tag, payload);
            let id = req.id;
            let row = req.row;
            if shard_of(shards, id).plan.rows <= ROW_TOUCH_MAX_ROWS {
                ctx.metric_add(&format!("ps.server.row_touch.m{}.r{}", id.0, row), 1);
            }
            match &req.data {
                PushData::DenseSeg { lo, values } => {
                    let values = Arc::clone(values);
                    let shard = shard_mut(shards, id);
                    for (i, v) in values.iter().enumerate() {
                        shard.add(row, lo + i as u64, *v);
                    }
                    ctx.charge_flops(values.len() as u64);
                }
                PushData::Sparse(pairs) => {
                    let pairs = Arc::clone(pairs);
                    let shard = shard_mut(shards, id);
                    for &(c, v) in pairs.iter() {
                        shard.add(row, c, v);
                    }
                    ctx.charge_flops(2 * pairs.len() as u64);
                }
            }
            (Box::new(()), 8)
        }
        tags::AGG => {
            let req: &AggReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            let slot = shard.slot(req.row);
            let mut acc = match req.kind {
                AggKind::Max => f64::NEG_INFINITY,
                _ => 0.0,
            };
            let mut n = 0u64;
            for seg in &shard.data[slot] {
                n += seg.len() as u64;
                for &v in seg {
                    match req.kind {
                        AggKind::Sum => acc += v,
                        AggKind::Nnz => acc += if v != 0.0 { 1.0 } else { 0.0 },
                        AggKind::Norm2Sq => acc += v * v,
                        AggKind::Max => acc = acc.max(v),
                    }
                }
            }
            ctx.charge_flops(n);
            (Box::new(acc), 16)
        }
        tags::DOT => {
            let req: &DotReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            let sa = shard.slot(req.row_a);
            let sb = shard.slot(req.row_b);
            let mut acc = 0.0;
            let mut n = 0u64;
            for (a, b) in shard.data[sa].iter().zip(&shard.data[sb]) {
                n += a.len() as u64;
                acc += a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
            }
            ctx.charge_flops(2 * n);
            (Box::new(acc), 16)
        }
        tags::AXPY => {
            let req: &AxpyReq = cast(tag, payload);
            let (alpha, id, dst, src) = (req.alpha, req.id, req.dst_row, req.src_row);
            let shard = shard_mut(shards, id);
            let n = apply_axpy(shard, dst, src, alpha);
            ctx.charge_flops(2 * n);
            (Box::new(()), 8)
        }
        tags::ELEM => {
            let req: &ElemReq = cast(tag, payload);
            let (id, dst, a, b, op) = (req.id, req.dst_row, req.a_row, req.b_row, req.op);
            let shard = shard_mut(shards, id);
            let sa = shard.slot(a);
            let sb = shard.slot(b);
            let sd = shard.slot(dst);
            let mut n = 0u64;
            for ri in 0..shard.ranges.len() {
                let av = shard.data[sa][ri].clone();
                let bv = shard.data[sb][ri].clone();
                let dv = &mut shard.data[sd][ri];
                n += dv.len() as u64;
                for i in 0..dv.len() {
                    dv[i] = op.apply(av[i], bv[i]);
                }
            }
            ctx.charge_flops(n);
            (Box::new(()), 8)
        }
        tags::ZIP => {
            let req: &ZipReq = cast(tag, payload);
            let f = Arc::clone(&req.f);
            let rows = req.rows.clone();
            let flops_per_elem = req.flops_per_elem;
            let id = req.id;
            let shard = shard_mut(shards, id);
            let slots: Vec<usize> = rows.iter().map(|&r| shard.slot(r)).collect();
            assert_unique(&slots);
            let mut taken: Vec<Vec<Vec<f64>>> = slots
                .iter()
                .map(|&s| std::mem::take(&mut shard.data[s]))
                .collect();
            let mut n = 0u64;
            for ri in 0..shard.ranges.len() {
                let lo = shard.ranges[ri].0;
                let mut segs: Vec<&mut [f64]> = taken
                    .iter_mut()
                    .map(|rowsegs| rowsegs[ri].as_mut_slice())
                    .collect();
                n += segs.first().map_or(0, |s| s.len() as u64);
                let mut zs = ZipSegs {
                    segs: std::mem::take(&mut segs),
                    lo,
                };
                f(&mut zs);
            }
            for (s, rowsegs) in slots.iter().zip(taken) {
                shard.data[*s] = rowsegs;
            }
            ctx.charge_flops(flops_per_elem * n);
            (Box::new(()), 8)
        }
        tags::ZIP_MAP => {
            let req: &ZipMapReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            let slots: Vec<usize> = req.rows.iter().map(|&r| shard.slot(r)).collect();
            let mut partials = Vec::with_capacity(shard.ranges.len());
            let mut n = 0u64;
            for ri in 0..shard.ranges.len() {
                let lo = shard.ranges[ri].0;
                let segs: Vec<&[f64]> = slots
                    .iter()
                    .map(|&s| shard.data[s][ri].as_slice())
                    .collect();
                n += segs.first().map_or(0, |s| s.len() as u64);
                partials.push((req.f)(&segs, lo));
            }
            ctx.charge_flops(req.flops_per_elem * n);
            let bytes = 16 + 8 * partials.len() as u64;
            (Box::new(partials), bytes)
        }
        tags::ZIP_ARGMAX => {
            let req: &crate::protocol::ZipArgmaxReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            let slots: Vec<usize> = req.rows.iter().map(|&r| shard.slot(r)).collect();
            let mut partials = Vec::with_capacity(shard.ranges.len());
            let mut n = 0u64;
            for ri in 0..shard.ranges.len() {
                let lo = shard.ranges[ri].0;
                let segs: Vec<&[f64]> = slots
                    .iter()
                    .map(|&s| shard.data[s][ri].as_slice())
                    .collect();
                n += segs.first().map_or(0, |s| s.len() as u64);
                partials.push((req.f)(&segs, lo));
            }
            ctx.charge_flops(req.flops_per_elem * n);
            let bytes = 16 + 16 * partials.len() as u64;
            (Box::new(partials), bytes)
        }
        tags::FILL => {
            let req: &FillReq = cast(tag, payload);
            let (id, row, value) = (req.id, req.row, req.value);
            let shard = shard_mut(shards, id);
            let slot = shard.slot(row);
            let mut n = 0u64;
            for seg in &mut shard.data[slot] {
                n += seg.len() as u64;
                seg.fill(value);
            }
            ctx.charge_mem(n * 8);
            (Box::new(()), 8)
        }
        tags::SCALE => {
            let req: &ScaleReq = cast(tag, payload);
            let (id, row, alpha) = (req.id, req.row, req.alpha);
            let shard = shard_mut(shards, id);
            let slot = shard.slot(row);
            let mut n = 0u64;
            for seg in &mut shard.data[slot] {
                n += seg.len() as u64;
                for v in seg.iter_mut() {
                    *v *= alpha;
                }
            }
            ctx.charge_flops(n);
            (Box::new(()), 8)
        }
        tags::PULL_BLOCK => {
            let req: &PullBlockReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            // [col_idx][row_idx] layout.
            let block: Vec<Vec<f64>> = req
                .cols
                .iter()
                .map(|&c| req.rows.iter().map(|&r| shard.get(r, c)).collect())
                .collect();
            let n = (req.cols.len() * req.rows.len()) as u64;
            ctx.charge_mem(n * 16);
            (
                Box::new(block),
                16 + n * req.value_bytes + 4 * req.cols.len() as u64,
            )
        }
        tags::PUSH_BLOCK => {
            let req: &PushBlockReq = cast(tag, payload);
            let rows = Arc::clone(&req.rows);
            let updates = Arc::clone(&req.updates);
            let shard = shard_mut(shards, req.id);
            let mut n = 0u64;
            for (c, deltas) in updates.iter() {
                for (&r, &d) in rows.iter().zip(deltas) {
                    shard.add(r, *c, d);
                    n += 1;
                }
            }
            ctx.charge_flops(2 * n);
            (Box::new(()), 8)
        }
        tags::FETCH_SEG => {
            let req: &FetchSegReq = cast(tag, payload);
            let shard = shard_of(shards, req.id);
            let values: Vec<f64> = (req.lo..req.hi).map(|c| shard.get(req.row, c)).collect();
            let n = values.len() as u64;
            ctx.charge_mem(n * 8);
            (Box::new(values), 16 + n * req.value_bytes)
        }
        tags::CROSS_DOT => {
            let req: &CrossDotReq = cast(tag, payload);
            let pieces = req.pieces.clone();
            let (local_id, local_row, remote_id, remote_row, vb) = (
                req.local_id,
                req.local_row,
                req.remote_id,
                req.remote_row,
                req.value_bytes,
            );
            let mut acc = 0.0;
            for (lo, hi, remote) in pieces {
                let remote_vals: Vec<f64> = if remote == me {
                    (lo..hi)
                        .map(|c| shard_of(shards, remote_id).get(remote_row, c))
                        .collect()
                } else {
                    let fetch = FetchSegReq {
                        id: remote_id,
                        row: remote_row,
                        lo,
                        hi,
                        value_bytes: vb,
                    };
                    ctx.call(remote, tags::FETCH_SEG, fetch, 48).downcast()
                };
                let shard = shard_of(shards, local_id);
                let mut partial = 0.0;
                for (i, rv) in remote_vals.iter().enumerate() {
                    partial += shard.get(local_row, lo + i as u64) * rv;
                }
                ctx.charge_flops(2 * (hi - lo));
                acc += partial;
            }
            (Box::new(acc), 16)
        }
        tags::CROSS_ELEM => {
            let req: &CrossElemReq = cast(tag, payload);
            let pieces = req.pieces.clone();
            let (dst_id, dst_row, src_id, src_row, op, vb) = (
                req.dst_id,
                req.dst_row,
                req.src_id,
                req.src_row,
                req.op,
                req.value_bytes,
            );
            for (lo, hi, remote) in pieces {
                let src_vals: Vec<f64> = if remote == me {
                    (lo..hi)
                        .map(|c| shard_of(shards, src_id).get(src_row, c))
                        .collect()
                } else {
                    let fetch = FetchSegReq {
                        id: src_id,
                        row: src_row,
                        lo,
                        hi,
                        value_bytes: vb,
                    };
                    ctx.call(remote, tags::FETCH_SEG, fetch, 48).downcast()
                };
                let shard = shard_mut(shards, dst_id);
                for (i, sv) in src_vals.iter().enumerate() {
                    let c = lo + i as u64;
                    let cur = shard.get(dst_row, c);
                    let new = op.apply(cur, *sv);
                    shard.add(dst_row, c, new - cur);
                }
                ctx.charge_flops(2 * (hi - lo));
            }
            (Box::new(()), 8)
        }
        tags::CHECKPOINT => {
            let req: &CheckpointReq = cast(tag, payload);
            let (storage, key) = (req.storage, req.key);
            let mut total = 0u64;
            let shard_data: Vec<(MatrixId, Vec<Vec<Vec<f64>>>)> = shards
                .iter()
                .map(|(&id, sh)| {
                    for row in &sh.data {
                        for seg in row {
                            total += seg.len() as u64;
                        }
                    }
                    (id, sh.data.clone())
                })
                .collect();
            let bytes = 32 + total * 8;
            ctx.charge_mem(total * 8);
            let snapshot = Arc::new(Snapshot {
                shards: shard_data,
                bytes,
            });
            let _ = ctx.call(
                storage,
                tags::STORE_PUT,
                StorePutReq { key, snapshot },
                bytes,
            );
            (Box::new(()), 8)
        }
        tags::RESTORE => {
            let req: &RestoreReq = cast(tag, payload);
            let (storage, key) = (req.storage, req.key);
            let resp: StoreGetResp = ctx
                .call(storage, tags::STORE_GET, StoreGetReq { key }, 16)
                .downcast();
            let restored = match resp {
                StoreGetResp::Found(snapshot) => {
                    for (id, data) in &snapshot.shards {
                        if let Some(shard) = shards.get_mut(id) {
                            shard.data = data.clone();
                        }
                    }
                    true
                }
                StoreGetResp::Missing => false,
            };
            (Box::new(restored), 8)
        }
        tags::PING => {
            // Liveness heartbeat: answer immediately. A server stuck in a
            // long op answers late, which the prober treats the same as any
            // slow reply; only a dead server never answers.
            (Box::new(()), 8)
        }
        other => panic!("ps-server: unknown tag {other}"),
    }
}

fn apply_axpy(shard: &mut Shard, dst: u32, src: u32, alpha: f64) -> u64 {
    let sd = shard.slot(dst);
    let ss = shard.slot(src);
    let mut n = 0u64;
    for ri in 0..shard.ranges.len() {
        let src_seg = shard.data[ss][ri].clone();
        let dst_seg = &mut shard.data[sd][ri];
        n += dst_seg.len() as u64;
        for (d, s) in dst_seg.iter_mut().zip(&src_seg) {
            *d += alpha * s;
        }
    }
    n
}

fn assert_unique(slots: &[usize]) {
    for (i, a) in slots.iter().enumerate() {
        for b in &slots[i + 1..] {
            assert_ne!(a, b, "zip rows must be distinct");
        }
    }
}

fn shard_of(shards: &HashMap<MatrixId, Shard>, id: MatrixId) -> &Shard {
    shards
        .get(&id)
        .unwrap_or_else(|| panic!("matrix {id:?} not present on this server"))
}

fn shard_mut(shards: &mut HashMap<MatrixId, Shard>, id: MatrixId) -> &mut Shard {
    shards
        .get_mut(&id)
        .unwrap_or_else(|| panic!("matrix {id:?} not present on this server"))
}

/// The checkpoint storage process ("reliable external storage", e.g. HDFS).
/// Charges a disk-bandwidth cost per operation on top of the network cost of
/// getting bytes to it.
pub fn storage_main(disk_bytes_per_sec: f64) -> impl FnOnce(&mut SimCtx) {
    move |ctx: &mut SimCtx| {
        let mut store: HashMap<u64, Arc<Snapshot>> = HashMap::new();
        loop {
            let env = ctx.recv();
            match env.tag {
                tags::STORE_PUT => {
                    let req: &StorePutReq = env.downcast_ref();
                    let secs = req.snapshot.bytes as f64 / disk_bytes_per_sec;
                    ctx.advance(SimTime::from_secs_f64(secs));
                    store.insert(req.key, Arc::clone(&req.snapshot));
                    ctx.reply(&env, (), 8);
                }
                tags::STORE_GET => {
                    let req: &StoreGetReq = env.downcast_ref();
                    match store.get(&req.key) {
                        Some(snap) => {
                            let secs = snap.bytes as f64 / disk_bytes_per_sec;
                            ctx.advance(SimTime::from_secs_f64(secs));
                            let bytes = snap.bytes;
                            ctx.reply(&env, StoreGetResp::Found(Arc::clone(snap)), bytes);
                        }
                        None => ctx.reply(&env, StoreGetResp::Missing, 8),
                    }
                }
                other => panic!("storage: unknown tag {other}"),
            }
        }
    }
}

/// Spawn `n` PS-servers plus one storage process.
pub fn deploy_ps(sim: &mut SimRuntime, n: usize, disk_bytes_per_sec: f64) -> (Vec<ProcId>, ProcId) {
    let servers = (0..n)
        .map(|i| sim.spawn_daemon(&format!("ps-server-{i}"), ps_server_main))
        .collect();
    let storage = sim.spawn_daemon("ps-storage", storage_main(disk_bytes_per_sec));
    (servers, storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partitioning;
    use crate::protocol::{ColsSel, PullReq, PushData, PushReq};
    use ps2_simnet::SimBuilder;

    #[test]
    fn op_log_recognizes_duplicates() {
        let mut log = OpLog::new();
        let id = MatrixId(1);
        assert!(!log.check_and_record(id, 7));
        assert!(log.check_and_record(id, 7));
        assert!(!log.check_and_record(MatrixId(2), 7));
        assert!(!log.check_and_record(id, 8));
    }

    #[test]
    fn op_log_evicts_oldest_at_capacity() {
        let mut log = OpLog::new();
        let id = MatrixId(1);
        for op in 0..OP_LOG_CAP as u64 {
            assert!(!log.check_and_record(id, op));
        }
        // One past capacity evicts the oldest entry (op 0)...
        assert!(!log.check_and_record(id, OP_LOG_CAP as u64));
        // ...so op 0 is forgotten, while the newest entry is remembered.
        assert!(!log.check_and_record(id, 0));
        assert!(log.check_and_record(id, OP_LOG_CAP as u64));
    }

    #[test]
    fn duplicate_push_is_applied_once() {
        let mut sim = SimBuilder::new().seed(3).build();
        let server = sim.spawn_daemon("ps-server-0", ps_server_main);
        let out = sim.spawn_collect("driver", move |ctx| {
            let plan = Arc::new(PartitionPlan::new(8, 1, 1, Partitioning::Column));
            let create = CreateReq {
                id: MatrixId(1),
                plan: Arc::clone(&plan),
                init: InitKind::Zero,
                slot: 0,
            };
            let _: () = ctx.call(server, tags::CREATE, create, 96).downcast();
            let push = PushReq {
                id: MatrixId(1),
                row: 0,
                data: PushData::DenseSeg {
                    lo: 0,
                    values: Arc::new(vec![1.0; 8]),
                },
                op_id: 77,
            };
            // Same op id twice — the model of a client retry racing a slow
            // server. Both must be acknowledged; only one may be applied.
            let _: () = ctx.call(server, tags::PUSH, push.clone(), 48).downcast();
            let _: () = ctx.call(server, tags::PUSH, push, 48).downcast();
            let pull = PullReq {
                id: MatrixId(1),
                row: 0,
                cols: ColsSel::All,
                value_bytes: 8,
            };
            let segs: Vec<Vec<f64>> = ctx.call(server, tags::PULL, pull, 48).downcast();
            segs[0][0]
        });
        sim.run().unwrap();
        assert_eq!(out.take(), 1.0);
    }

    #[test]
    fn duplicate_envelope_subs_are_applied_once() {
        let mut sim = SimBuilder::new().seed(5).build();
        let server = sim.spawn_daemon("ps-server-0", ps_server_main);
        let out = sim.spawn_collect("driver", move |ctx| {
            let plan = Arc::new(PartitionPlan::new(8, 1, 1, Partitioning::Column));
            let create = CreateReq {
                id: MatrixId(1),
                plan: Arc::clone(&plan),
                init: InitKind::Zero,
                slot: 0,
            };
            let _: () = ctx.call(server, tags::CREATE, create, 96).downcast();
            let push = PushReq {
                id: MatrixId(1),
                row: 0,
                data: PushData::DenseSeg {
                    lo: 0,
                    values: Arc::new(vec![1.0; 8]),
                },
                op_id: 91,
            };
            let env = EnvelopeReq {
                op_id: 1,
                epoch: 0,
                subs: Arc::new(vec![(
                    tags::PUSH,
                    Arc::new(push) as Arc<dyn Any + Send + Sync>,
                    48,
                )]),
            };
            // An enveloped mutation retried whole must dedup per sub.
            let _ = ctx.call(server, tags::ENVELOPE, env.clone(), 64);
            let _ = ctx.call(server, tags::ENVELOPE, env, 64);
            let pull = PullReq {
                id: MatrixId(1),
                row: 0,
                cols: ColsSel::All,
                value_bytes: 8,
            };
            let segs: Vec<Vec<f64>> = ctx.call(server, tags::PULL, pull, 48).downcast();
            segs[0][0]
        });
        sim.run().unwrap();
        assert_eq!(out.take(), 1.0);
    }
}
