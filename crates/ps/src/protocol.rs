//! Wire protocol between PS-clients, PS-servers, the master and storage.

use std::sync::Arc;

use ps2_simnet::ProcId;

use crate::plan::{MatrixId, PartitionPlan};

/// Message tags on the PS port space (dataflow uses 1..10).
pub(crate) mod tags {
    pub const CREATE: u32 = 10;
    pub const FREE: u32 = 11;
    pub const PULL: u32 = 12;
    pub const PUSH: u32 = 13;
    pub const AGG: u32 = 14;
    pub const DOT: u32 = 15;
    pub const AXPY: u32 = 16;
    pub const ELEM: u32 = 17;
    pub const ZIP: u32 = 18;
    pub const ZIP_MAP: u32 = 19;
    pub const FILL: u32 = 20;
    pub const SCALE: u32 = 21;
    pub const PULL_BLOCK: u32 = 22;
    pub const PUSH_BLOCK: u32 = 23;
    pub const FETCH_SEG: u32 = 24;
    pub const CROSS_DOT: u32 = 25;
    pub const CROSS_ELEM: u32 = 26;
    pub const CHECKPOINT: u32 = 27;
    pub const RESTORE: u32 = 28;
    pub const ZIP_ARGMAX: u32 = 29;
    // 30..=33 were the ad-hoc batched psFuncs (DOT_BATCH, ZIP_BATCH,
    // PULL_ROWS, PUSH_ROWS), superseded by the generic ENVELOPE container;
    // the numbers stay reserved so old traces read unambiguously.
    /// Liveness heartbeat: servers answer immediately with `()`.
    pub const PING: u32 = 34;
    /// Per-server coalescing container: many sub-requests, one message.
    pub const ENVELOPE: u32 = 35;
    pub const STORE_PUT: u32 = 40;
    pub const STORE_GET: u32 = 41;
    // 60..=61 are the consistency clock service (REPORT/WAIT); see
    // `crate::consistency::clock_tags`.

    /// Stable op name for metric keys and breakdown tables.
    pub fn name(tag: u32) -> &'static str {
        match tag {
            CREATE => "create",
            FREE => "free",
            PULL => "pull",
            PUSH => "push",
            AGG => "agg",
            DOT => "dot",
            AXPY => "axpy",
            ELEM => "elem",
            ZIP => "zip",
            ZIP_MAP => "zip_map",
            FILL => "fill",
            SCALE => "scale",
            PULL_BLOCK => "pull_block",
            PUSH_BLOCK => "push_block",
            FETCH_SEG => "fetch_seg",
            CROSS_DOT => "cross_dot",
            CROSS_ELEM => "cross_elem",
            CHECKPOINT => "checkpoint",
            RESTORE => "restore",
            ZIP_ARGMAX => "zip_argmax",
            PING => "ping",
            ENVELOPE => "envelope",
            STORE_PUT => "store_put",
            STORE_GET => "store_get",
            _ => "unknown",
        }
    }
}

/// How to initialize a fresh matrix.
#[derive(Clone, Debug)]
pub enum InitKind {
    Zero,
    Const(f64),
    /// Uniform in `[lo, hi)`, deterministic in `(seed, row, column)`.
    Uniform {
        lo: f64,
        hi: f64,
        seed: u64,
    },
}

/// Row-access aggregations (paper Table 1: `sum`, `nnz`, `norm2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    Sum,
    Nnz,
    /// Sum of squares; the client takes the square root.
    Norm2Sq,
    Max,
}

/// Binary element-wise column ops (paper Table 1: `add`, `sub`, `mul`,
/// `div`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ElemOp {
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ElemOp::Add => a + b,
            ElemOp::Sub => a - b,
            ElemOp::Mul => a * b,
            ElemOp::Div => a / b,
        }
    }
}

/// Mutable segments of the zipped rows, all covering the same column range
/// of one server — the argument of a server-side `zip` update.
pub struct ZipSegs<'a> {
    /// One mutable segment per zipped row, in request order.
    pub segs: Vec<&'a mut [f64]>,
    /// First global column of the segments.
    pub lo: u64,
}

/// Server-side multi-vector update (paper Figure 3, lines 21-26).
pub type ZipMutFn = Arc<dyn Fn(&mut ZipSegs<'_>) + Send + Sync>;

/// Server-side read-only fold over co-located segments, returning one
/// scalar per server (e.g. loss sums, embedding dot products).
pub type ZipMapFn = Arc<dyn Fn(&[&[f64]], u64) -> f64 + Send + Sync>;

/// Server-side read-only scan returning `(score, global index)` — the GBDT
/// split-finding shape (paper §5.2.3's `max` operator). The second argument
/// is the first global column of the segments.
pub type ZipArgmaxFn = Arc<dyn Fn(&[&[f64]], u64) -> (f64, u64) + Send + Sync>;

// ---- request payloads -------------------------------------------------------

#[derive(Clone)]
pub(crate) struct CreateReq {
    pub id: MatrixId,
    pub plan: Arc<PartitionPlan>,
    pub init: InitKind,
    /// Which logical slot the receiving server occupies.
    pub slot: usize,
}

#[derive(Clone)]
pub(crate) struct FreeReq {
    pub id: MatrixId,
}

/// Column selector for pulls, pre-filtered to the receiving server.
#[derive(Clone)]
pub(crate) enum ColsSel {
    /// All columns this server owns.
    All,
    /// A contiguous range (dense worker-slice access).
    Range(u64, u64),
    /// An explicit sorted list (sparse access).
    List(Arc<Vec<u64>>),
}

#[derive(Clone)]
pub(crate) struct PullReq {
    pub id: MatrixId,
    pub row: u32,
    pub cols: ColsSel,
    /// Bytes per value on the wire (8, or 4 with message compression).
    pub value_bytes: u64,
}

#[derive(Clone)]
pub(crate) enum PushData {
    /// Dense values for `[lo, lo + values.len())`.
    DenseSeg { lo: u64, values: Arc<Vec<f64>> },
    /// Sparse `(column, delta)` pairs.
    Sparse(Arc<Vec<(u64, f64)>>),
}

#[derive(Clone)]
pub(crate) struct PushReq {
    pub id: MatrixId,
    pub row: u32,
    pub data: PushData,
    /// Attempt id of the logical update, allocated once per client op and
    /// reused verbatim on timeout retries. Servers remember recently applied
    /// `(matrix, op_id)` pairs and skip duplicates, so a retry that races a
    /// slow-but-alive server does not double-apply the delta. Every mutating
    /// request carries one.
    pub op_id: u64,
}

#[derive(Clone)]
pub(crate) struct AggReq {
    pub id: MatrixId,
    pub row: u32,
    pub kind: AggKind,
}

#[derive(Clone)]
pub(crate) struct DotReq {
    pub id: MatrixId,
    pub row_a: u32,
    pub row_b: u32,
}

#[derive(Clone)]
pub(crate) struct AxpyReq {
    pub id: MatrixId,
    pub dst_row: u32,
    pub src_row: u32,
    pub alpha: f64,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

#[derive(Clone)]
pub(crate) struct ElemReq {
    pub id: MatrixId,
    pub dst_row: u32,
    pub a_row: u32,
    pub b_row: u32,
    pub op: ElemOp,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

#[derive(Clone)]
pub(crate) struct ZipReq {
    pub id: MatrixId,
    pub rows: Vec<u32>,
    pub f: ZipMutFn,
    /// Cost model: flops charged per column element touched.
    pub flops_per_elem: u64,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

#[derive(Clone)]
pub(crate) struct ZipMapReq {
    pub id: MatrixId,
    pub rows: Vec<u32>,
    pub f: ZipMapFn,
    pub flops_per_elem: u64,
}

#[derive(Clone)]
pub(crate) struct ZipArgmaxReq {
    pub id: MatrixId,
    pub rows: Vec<u32>,
    pub f: ZipArgmaxFn,
    pub flops_per_elem: u64,
}

/// One sub-request inside an [`EnvelopeReq`]: its would-be tag, its payload
/// (type-erased so one container carries any mix of ops), and the wire bytes
/// its *body* contributes to the envelope.
pub(crate) type SubReq = (u32, Arc<dyn std::any::Any + Send + Sync>, u64);

/// The per-server coalescing container (the Angel-style batched psFunc,
/// generalized): every sub-request a flush bound for one server rides in a
/// single message. Sub-requests execute in order; mutating subs carry their
/// own op-ids, so a retried envelope re-applies none of them. The envelope
/// itself is a pure container and is never deduped.
#[derive(Clone)]
pub(crate) struct EnvelopeReq {
    /// Identifies the flush attempt for tracing; not a dedup key.
    pub op_id: u64,
    /// Route epoch the client resolved against when building the envelope.
    /// Carried for wire-trace debugging (a stale-epoch envelope reaching a
    /// replacement server is visible in captures); servers don't consult it.
    #[allow(dead_code)]
    pub epoch: u64,
    pub subs: Arc<Vec<SubReq>>,
}

#[derive(Clone)]
pub(crate) struct FillReq {
    pub id: MatrixId,
    pub row: u32,
    pub value: f64,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

#[derive(Clone)]
pub(crate) struct ScaleReq {
    pub id: MatrixId,
    pub row: u32,
    pub alpha: f64,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

/// Pull a `rows × cols` block (LDA's by-word access pattern: all topic rows
/// of a set of word columns, served by one server thanks to co-location).
#[derive(Clone)]
pub(crate) struct PullBlockReq {
    pub id: MatrixId,
    pub rows: Arc<Vec<u32>>,
    pub cols: Arc<Vec<u64>>,
    pub value_bytes: u64,
}

#[derive(Clone)]
pub(crate) struct PushBlockReq {
    pub id: MatrixId,
    pub rows: Arc<Vec<u32>>,
    /// `(column, deltas-per-row)` — deltas aligned with `rows`.
    pub updates: Arc<Vec<(u64, Vec<f64>)>>,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

/// Server-to-server segment fetch (cross-matrix ops on misaligned plans).
pub(crate) struct FetchSegReq {
    pub id: MatrixId,
    pub row: u32,
    pub lo: u64,
    pub hi: u64,
    pub value_bytes: u64,
}

/// Dot between a local row and a remote (misaligned) matrix's row. The
/// client pre-computed where each local piece lives remotely.
#[derive(Clone)]
pub(crate) struct CrossDotReq {
    pub local_id: MatrixId,
    pub local_row: u32,
    pub remote_id: MatrixId,
    pub remote_row: u32,
    /// `(lo, hi, remote server)` pieces covering this server's ranges.
    pub pieces: Vec<(u64, u64, ProcId)>,
    pub value_bytes: u64,
}

/// `dst = dst op remote_src` for misaligned matrices; the local server
/// fetches the remote pieces.
#[derive(Clone)]
pub(crate) struct CrossElemReq {
    pub dst_id: MatrixId,
    pub dst_row: u32,
    pub src_id: MatrixId,
    pub src_row: u32,
    pub op: ElemOp,
    pub pieces: Vec<(u64, u64, ProcId)>,
    pub value_bytes: u64,
    /// See [`PushReq::op_id`].
    pub op_id: u64,
}

#[derive(Clone)]
pub(crate) struct CheckpointReq {
    pub storage: ProcId,
    /// Stable logical key of this server slot (survives respawns).
    pub key: u64,
}

#[derive(Clone)]
pub(crate) struct RestoreReq {
    pub storage: ProcId,
    pub key: u64,
}

// ---- storage process payloads ----------------------------------------------

/// A server's snapshot: every shard's segments. Stored by the storage
/// process as an opaque value.
pub(crate) struct Snapshot {
    pub shards: Vec<(MatrixId, Vec<Vec<Vec<f64>>>)>,
    pub bytes: u64,
}

pub(crate) struct StorePutReq {
    pub key: u64,
    pub snapshot: Arc<Snapshot>,
}

pub(crate) struct StoreGetReq {
    pub key: u64,
}

pub(crate) enum StoreGetResp {
    Found(Arc<Snapshot>),
    Missing,
}
