//! # ps2-ps — the parameter-server substrate
//!
//! Implements the PS-master / PS-server / PS-client triple of the paper's
//! architecture (§3.2, §5.1) on the simulated cluster:
//!
//! * **PS-servers** are daemon processes storing matrix *shards*. A matrix
//!   has `k` rows over `dim` columns; under the **column partition plan**
//!   every server owns a contiguous column range *of every row* — the layout
//!   that makes the paper's DCV co-location work. A **row partition plan**
//!   (whole rows hashed to servers) is also provided as the Petuum-style
//!   baseline layout.
//! * **PS-clients** are not processes: any worker task holding a
//!   [`MatrixHandle`] can issue scatter/gather requests through its own
//!   `SimCtx`. Handles route by the partition plan.
//! * **PS-master** lives in the coordinator (driver) process: it allocates
//!   matrices, tracks metadata, coordinates checkpoints to a storage
//!   process, and replaces failed servers (recovering their state from the
//!   last checkpoint — the paper's server fault-tolerance story, §5.3).
//!
//! Server-side computation — the mechanism DCV enables — is exposed as
//! element-wise ops ([`MatrixHandle::elem`], [`MatrixHandle::axpy`],
//! [`MatrixHandle::dot`]) and user zips ([`MatrixHandle::zip`],
//! [`MatrixHandle::zip_map`]) that run on each server over co-located
//! segments, with only scalars crossing the network.

mod client;
mod consistency;
mod master;
mod plan;
mod protocol;
mod serve;
mod server;

pub use client::{BatchResult, MatrixHandle, ParamCache, PendingPush, PsBatch};
pub use consistency::{
    clock_main, clock_policy, clock_tags, ClockClient, ClockGrant, ClockReportReq, ClockWaitReq,
    ConsistencyMode, ASYNC_CACHE_TTL,
};
pub use master::{PsConfig, PsFleet, PsMaster};
pub use plan::{MatrixId, PartitionPlan, Partitioning, PlanKind, RouteTable};
pub use protocol::{AggKind, ElemOp, InitKind, ZipArgmaxFn, ZipMapFn, ZipMutFn, ZipSegs};
pub use serve::{create_serve_table, ServeClientAgent, ServeClientConfig};
pub use server::{deploy_ps, ps_server_main, storage_main, PsServerAgent};
