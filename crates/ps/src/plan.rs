//! Partition plans and routing: how a matrix's parameters are laid out
//! across logical server slots, and how slots resolve to live processes.
//!
//! Plans reference *slots* (`0..n_servers`), not process ids: when the
//! master replaces a failed server, it updates the shared [`RouteTable`] and
//! every outstanding [`crate::MatrixHandle`] transparently reaches the
//! replacement — the PS-master's "routing tables for PS-clients" of §5.1.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use ps2_simnet::ProcId;

/// Identifier of a matrix (a `k × dim` block of parameters) on the servers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MatrixId(pub u64);

/// Requested layout when creating a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// Contiguous column ranges, range `i` on slot `i` — the PS2/DCV
    /// layout. All rows of one matrix share the plan, so same-matrix rows
    /// are dimension co-located by construction.
    Column,
    /// Column ranges with the slot assignment rotated by `r`. Two matrices
    /// created with different rotations are *misaligned*: element-wise ops
    /// between them need server↔server traffic — the "inefficient writing"
    /// of the paper's Figure 4.
    ColumnRotated(usize),
    /// Whole rows hashed to slots (`row % servers`) — the Petuum-style
    /// layout. Row access hits a single server (the "single-point problem"
    /// of §4.3); server-side column ops across rows on different servers
    /// are unsupported.
    Row,
}

/// Concrete layout of one matrix over logical server slots.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionPlan {
    /// Number of columns (feature dimension).
    pub dim: u64,
    /// Number of rows in the raw matrix (`k` in the paper's `dense(dim, k)`).
    pub rows: u32,
    pub kind: PlanKind,
}

#[derive(Clone, Debug, PartialEq)]
pub enum PlanKind {
    Column {
        /// `n_slots + 1` boundaries; range `i` is
        /// `[boundaries[i], boundaries[i+1])`.
        boundaries: Vec<u64>,
        /// Range `i` lives on slot `assign[i]`.
        assign: Vec<usize>,
    },
    Row {
        n_slots: usize,
    },
}

impl PartitionPlan {
    pub fn new(dim: u64, rows: u32, n_slots: usize, p: Partitioning) -> PartitionPlan {
        assert!(dim > 0 && rows > 0 && n_slots > 0);
        let kind = match p {
            Partitioning::Column | Partitioning::ColumnRotated(_) => {
                let s = n_slots as u64;
                // Ranges may be empty when dim < n_slots; they are skipped
                // at routing time so `assign` stays aligned with slots.
                let boundaries: Vec<u64> = (0..=s).map(|i| i * dim / s).collect();
                let rot = match p {
                    Partitioning::ColumnRotated(r) => r % n_slots,
                    _ => 0,
                };
                let assign = (0..n_slots).map(|i| (i + rot) % n_slots).collect();
                PlanKind::Column { boundaries, assign }
            }
            Partitioning::Row => PlanKind::Row { n_slots },
        };
        PartitionPlan { dim, rows, kind }
    }

    pub fn n_slots(&self) -> usize {
        match &self.kind {
            PlanKind::Column { assign, .. } => assign.len(),
            PlanKind::Row { n_slots } => *n_slots,
        }
    }

    /// Two plans are *co-located* when every column lives on the same slot
    /// in both. Element-wise ops between co-located matrices need no
    /// server↔server communication.
    pub fn colocated_with(&self, other: &PartitionPlan) -> bool {
        self.dim == other.dim && self.kind == other.kind
    }

    /// For column plans: `(slot, lo, hi)` for every non-empty range, in
    /// column order.
    pub fn column_ranges(&self) -> Vec<(usize, u64, u64)> {
        match &self.kind {
            PlanKind::Column { boundaries, assign } => (0..assign.len())
                .filter(|&i| boundaries[i] < boundaries[i + 1])
                .map(|i| (assign[i], boundaries[i], boundaries[i + 1]))
                .collect(),
            PlanKind::Row { .. } => panic!("column_ranges on a row-partitioned plan"),
        }
    }

    /// The column ranges owned by `slot`, in column order.
    pub fn ranges_of(&self, slot: usize) -> Vec<(u64, u64)> {
        self.column_ranges()
            .into_iter()
            .filter(|&(s, _, _)| s == slot)
            .map(|(_, lo, hi)| (lo, hi))
            .collect()
    }

    /// For row plans: the slot owning `row`.
    pub fn row_owner(&self, row: u32) -> usize {
        match &self.kind {
            PlanKind::Row { n_slots } => row as usize % n_slots,
            PlanKind::Column { .. } => panic!("row_owner on a column-partitioned plan"),
        }
    }

    /// The slot owning column `col` (column plans only).
    pub fn col_owner(&self, col: u64) -> usize {
        assert!(col < self.dim, "column {col} out of range {}", self.dim);
        match &self.kind {
            PlanKind::Column { boundaries, assign } => {
                let i = match boundaries.binary_search(&col) {
                    Ok(mut i) => {
                        // `col` equals a boundary; find the non-empty range
                        // starting here.
                        while boundaries[i + 1] == boundaries[i] {
                            i += 1;
                        }
                        i
                    }
                    Err(i) => i - 1,
                };
                assign[i]
            }
            PlanKind::Row { .. } => panic!("col_owner on a row-partitioned plan"),
        }
    }

    /// Cover `[lo, hi)` with this plan's owning slots: `(sub_lo, sub_hi,
    /// slot)` pieces in column order. Used when orchestrating ops between
    /// misaligned matrices.
    pub fn locate_range(&self, lo: u64, hi: u64) -> Vec<(u64, u64, usize)> {
        let mut out = Vec::new();
        for (slot, rlo, rhi) in self.column_ranges() {
            let s = lo.max(rlo);
            let e = hi.min(rhi);
            if s < e {
                out.push((s, e, slot));
            }
        }
        out
    }

    /// Total parameters in the matrix.
    pub fn total_params(&self) -> u64 {
        self.dim * self.rows as u64
    }
}

/// Shared slot → process routing, updated by the master on recovery.
pub struct RouteTable {
    slots: RwLock<Vec<ProcId>>,
    /// Recovery epoch: bumped on every [`RouteTable::set`]. A client whose
    /// request timed out compares epochs to tell a *slow* server (epoch
    /// unchanged — keep waiting / resend to the same process) from a
    /// *replaced* one (epoch advanced — re-resolve and retry the new
    /// process).
    epoch: AtomicU64,
}

impl RouteTable {
    pub fn new(servers: Vec<ProcId>) -> Arc<RouteTable> {
        Arc::new(RouteTable {
            slots: RwLock::new(servers),
            epoch: AtomicU64::new(0),
        })
    }

    pub fn resolve(&self, slot: usize) -> ProcId {
        self.slots.read()[slot]
    }

    pub fn set(&self, slot: usize, id: ProcId) {
        let mut slots = self.slots.write();
        slots[slot] = id;
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Current recovery epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn n_slots(&self) -> usize {
        self.slots.read().len()
    }

    pub fn all(&self) -> Vec<ProcId> {
        self.slots.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_plan_covers_dim_exactly() {
        let plan = PartitionPlan::new(103, 4, 4, Partitioning::Column);
        let ranges = plan.column_ranges();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].1, 0);
        assert_eq!(ranges.last().unwrap().2, 103);
        let covered: u64 = ranges.iter().map(|&(_, lo, hi)| hi - lo).sum();
        assert_eq!(covered, 103);
        for w in ranges.windows(2) {
            assert_eq!(w[0].2, w[1].1, "ranges must be contiguous");
        }
    }

    #[test]
    fn rotated_plan_is_not_colocated() {
        let a = PartitionPlan::new(100, 2, 4, Partitioning::Column);
        let b = PartitionPlan::new(100, 2, 4, Partitioning::ColumnRotated(1));
        let c = PartitionPlan::new(100, 2, 4, Partitioning::Column);
        assert!(a.colocated_with(&c));
        assert!(!a.colocated_with(&b));
        // Same boundaries, shifted slots.
        assert_eq!(a.column_ranges()[0].1, b.column_ranges()[0].1);
        assert_ne!(a.column_ranges()[0].0, b.column_ranges()[0].0);
    }

    #[test]
    fn col_owner_matches_ranges() {
        let plan = PartitionPlan::new(97, 1, 5, Partitioning::ColumnRotated(2));
        for (slot, lo, hi) in plan.column_ranges() {
            for c in lo..hi {
                assert_eq!(plan.col_owner(c), slot, "col {c}");
            }
        }
    }

    #[test]
    fn row_plan_routes_by_modulo() {
        let plan = PartitionPlan::new(10, 7, 3, Partitioning::Row);
        assert_eq!(plan.row_owner(0), 0);
        assert_eq!(plan.row_owner(4), 1);
        assert_eq!(plan.row_owner(5), 2);
    }

    #[test]
    fn locate_range_splits_across_slots() {
        let plan = PartitionPlan::new(100, 1, 4, Partitioning::Column);
        // ranges: [0,25) [25,50) [50,75) [75,100)
        let pieces = plan.locate_range(20, 60);
        assert_eq!(pieces, vec![(20, 25, 0), (25, 50, 1), (50, 60, 2)]);
    }

    #[test]
    fn dim_smaller_than_slots_leaves_empty_ranges_out() {
        let plan = PartitionPlan::new(2, 1, 4, Partitioning::Column);
        let ranges = plan.column_ranges();
        let covered: u64 = ranges.iter().map(|&(_, lo, hi)| hi - lo).sum();
        assert_eq!(covered, 2);
        for &(_, lo, hi) in &ranges {
            assert!(lo < hi);
        }
    }

    #[test]
    fn route_table_updates_are_visible() {
        let rt = RouteTable::new(vec![ProcId(1), ProcId(2)]);
        assert_eq!(rt.resolve(1), ProcId(2));
        rt.set(1, ProcId(9));
        assert_eq!(rt.resolve(1), ProcId(9));
        assert_eq!(rt.n_slots(), 2);
    }

    #[test]
    fn route_table_epoch_advances_on_every_replacement() {
        let rt = RouteTable::new(vec![ProcId(1), ProcId(2)]);
        assert_eq!(rt.epoch(), 0);
        rt.set(0, ProcId(7));
        assert_eq!(rt.epoch(), 1);
        rt.set(0, ProcId(8));
        rt.set(1, ProcId(9));
        assert_eq!(rt.epoch(), 3);
    }
}
