//! The PS-master: matrix lifecycle, routing, checkpoints and server
//! recovery. Lives inside the coordinator (driver) process, per §5.1.

use std::any::Any;
use std::sync::Arc;

use ps2_simnet::{ProcId, SimCtx};

use crate::client::MatrixHandle;
use crate::plan::{MatrixId, PartitionPlan, Partitioning, RouteTable};
use crate::protocol::{tags, CheckpointReq, CreateReq, FreeReq, InitKind, RestoreReq};
use crate::server::ps_server_main;

/// Master-level configuration.
#[derive(Clone, Debug)]
#[derive(Default)]
pub struct PsConfig {
    /// Ship parameters as 4-byte floats (the paper's message-compression
    /// engineering, §6.3.3) instead of 8-byte doubles.
    pub compress: bool,
}


/// Coordinator-side manager of the parameter-server fleet.
pub struct PsMaster {
    route: Arc<RouteTable>,
    storage: ProcId,
    next_id: u64,
    /// Metadata replayed into replacement servers on recovery.
    matrices: Vec<(MatrixId, Arc<PartitionPlan>, InitKind)>,
    pub config: PsConfig,
    /// Servers replaced after failures.
    pub recoveries: u64,
    respawn_counter: u64,
}

impl PsMaster {
    pub fn new(servers: Vec<ProcId>, storage: ProcId, config: PsConfig) -> PsMaster {
        assert!(!servers.is_empty(), "need at least one PS-server");
        PsMaster {
            route: RouteTable::new(servers),
            storage,
            next_id: 1,
            matrices: Vec::new(),
            config,
            recoveries: 0,
            respawn_counter: 0,
        }
    }

    pub fn n_servers(&self) -> usize {
        self.route.n_slots()
    }

    pub fn route(&self) -> Arc<RouteTable> {
        Arc::clone(&self.route)
    }

    fn value_bytes(&self) -> u64 {
        if self.config.compress {
            4
        } else {
            8
        }
    }

    /// Allocate a `rows × dim` matrix across the servers.
    pub fn create_matrix(
        &mut self,
        ctx: &mut SimCtx,
        dim: u64,
        rows: u32,
        partitioning: Partitioning,
        init: InitKind,
    ) -> MatrixHandle {
        let id = MatrixId(self.next_id);
        self.next_id += 1;
        let plan = Arc::new(PartitionPlan::new(
            dim,
            rows,
            self.route.n_slots(),
            partitioning,
        ));
        self.matrices.push((id, Arc::clone(&plan), init.clone()));
        self.create_on_servers(ctx, id, &plan, &init, None);
        MatrixHandle {
            id,
            plan,
            route: Arc::clone(&self.route),
            value_bytes: self.value_bytes(),
        }
    }

    fn create_on_servers(
        &self,
        ctx: &mut SimCtx,
        id: MatrixId,
        plan: &Arc<PartitionPlan>,
        init: &InitKind,
        only_slot: Option<usize>,
    ) {
        let reqs: Vec<_> = (0..self.route.n_slots())
            .filter(|s| only_slot.is_none_or(|o| o == *s))
            .map(|slot| {
                let req = CreateReq {
                    id,
                    plan: Arc::clone(plan),
                    init: init.clone(),
                    slot,
                };
                (
                    self.route.resolve(slot),
                    tags::CREATE,
                    Box::new(req) as Box<dyn Any + Send>,
                    96,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Release a matrix on all servers.
    pub fn free_matrix(&mut self, ctx: &mut SimCtx, handle: &MatrixHandle) {
        self.matrices.retain(|(id, _, _)| *id != handle.id);
        let reqs = (0..self.route.n_slots())
            .map(|slot| {
                let req = FreeReq { id: handle.id };
                (
                    self.route.resolve(slot),
                    tags::FREE,
                    Box::new(req) as Box<dyn Any + Send>,
                    32u64,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Checkpoint every server's shards to the reliable external storage
    /// (paper §5.3 "periodically checkpoints the model parameters").
    pub fn checkpoint_all(&mut self, ctx: &mut SimCtx) {
        let reqs = (0..self.route.n_slots())
            .map(|slot| {
                let req = CheckpointReq {
                    storage: self.storage,
                    key: slot as u64,
                };
                (
                    self.route.resolve(slot),
                    tags::CHECKPOINT,
                    Box::new(req) as Box<dyn Any + Send>,
                    48u64,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Detect dead servers and replace each with a fresh process whose state
    /// is rebuilt from matrix metadata plus the latest checkpoint. Updates
    /// the shared route table so existing handles keep working. Returns the
    /// slots recovered.
    pub fn recover_dead_servers(&mut self, ctx: &mut SimCtx) -> Vec<usize> {
        let mut recovered = Vec::new();
        for slot in 0..self.route.n_slots() {
            if ctx.is_alive(self.route.resolve(slot)) {
                continue;
            }
            self.respawn_counter += 1;
            self.recoveries += 1;
            let name = format!("ps-server-{slot}r{}", self.respawn_counter);
            let fresh = ctx.spawn_daemon(&name, ps_server_main);
            self.route.set(slot, fresh);
            // Replay metadata, then load checkpointed values.
            let metas: Vec<_> = self.matrices.clone();
            for (id, plan, init) in &metas {
                self.create_on_servers(ctx, *id, plan, init, Some(slot));
            }
            let req = RestoreReq {
                storage: self.storage,
                key: slot as u64,
            };
            let _restored: bool = ctx.call(fresh, tags::RESTORE, req, 48).downcast();
            recovered.push(slot);
        }
        recovered
    }
}
