//! The PS-master: matrix lifecycle, routing, checkpoints and server
//! recovery. Lives inside the coordinator (driver) process, per §5.1.

use std::any::Any;
use std::sync::Arc;

use parking_lot::Mutex;
use ps2_simnet::{fabric, LivenessProbe, ProcId, SimCtx, SimTime};

use crate::client::{ps_policy, MatrixHandle, PsRouter};
use crate::plan::{MatrixId, PartitionPlan, Partitioning, RouteTable};
use crate::protocol::{tags, CheckpointReq, CreateReq, FreeReq, InitKind, RestoreReq};
use crate::server::ps_server_main;

/// Master-level configuration.
#[derive(Clone, Debug, Default)]
pub struct PsConfig {
    /// Ship parameters as 4-byte floats (the paper's message-compression
    /// engineering, §6.3.3) instead of 8-byte doubles.
    pub compress: bool,
}

/// How long a liveness ping waits before a server is suspected dead.
fn ping_timeout() -> SimTime {
    SimTime::from_secs_f64(5.0)
}

#[derive(Clone, Copy, Default)]
struct FleetStats {
    recoveries: u64,
    silent_reinits: u64,
    respawns: u64,
}

/// Shared, recovery-capable view of the PS-server fleet.
///
/// Extracted from [`PsMaster`] so that *any* process noticing a dead server
/// can replace it: the driver (from the scheduler's timeout branch, via
/// [`LivenessProbe`]) and every PS-client holding a [`MatrixHandle`] (from a
/// timed-out request). Recovery is single-flight: whoever wins the
/// `in_recovery` try-lock performs it; everyone else backs off and retries
/// their request once the [`RouteTable`] epoch advances.
///
/// Lock discipline: `matrices` and `stats` are held only for non-yielding
/// metadata reads/writes. `in_recovery` *is* held across simulator yield
/// points, which is safe only because it is exclusively `try_lock`ed —
/// blocking on it from another simulated process would wedge the scheduler.
pub struct PsFleet {
    route: Arc<RouteTable>,
    storage: ProcId,
    /// Metadata replayed into replacement servers on recovery.
    matrices: Mutex<Vec<(MatrixId, Arc<PartitionPlan>, InitKind)>>,
    stats: Mutex<FleetStats>,
    in_recovery: Mutex<()>,
}

impl PsFleet {
    fn new(servers: Vec<ProcId>, storage: ProcId) -> PsFleet {
        PsFleet {
            route: RouteTable::new(servers),
            storage,
            matrices: Mutex::new(Vec::new()),
            stats: Mutex::new(FleetStats::default()),
            in_recovery: Mutex::new(()),
        }
    }

    pub fn route(&self) -> Arc<RouteTable> {
        Arc::clone(&self.route)
    }

    /// Servers replaced after failures.
    pub fn recoveries(&self) -> u64 {
        self.stats.lock().recoveries
    }

    /// Recoveries that found no checkpoint and fell back to re-initialized
    /// parameters — the failure mode `recover_dead_servers` used to swallow.
    pub fn silent_reinits(&self) -> u64 {
        self.stats.lock().silent_reinits
    }

    /// Heartbeat every slot (protocol tag `PING`) and return the slots that
    /// did not answer within the ping timeout: dead servers, or servers
    /// stuck long enough to deserve a closer look.
    ///
    /// Deliberately *not* routed through the request fabric: the fabric
    /// retries and recovers on timeout, but this ping IS the detector that
    /// recovery consults — a single raw deadline-bounded scatter whose
    /// misses are the answer, not a failure to mask.
    pub fn ping_all(&self, ctx: &mut SimCtx) -> Vec<usize> {
        let slots: Vec<usize> = (0..self.route.n_slots()).collect();
        let reqs: Vec<_> = slots
            .iter()
            .map(|&slot| {
                (
                    self.route.resolve(slot),
                    tags::PING,
                    Box::new(()) as Box<dyn Any + Send>,
                    8u64,
                )
            })
            .collect();
        let deadline = ctx.now() + ping_timeout();
        let replies = ctx.call_many_deadline(reqs, deadline);
        slots
            .into_iter()
            .zip(replies)
            .filter(|(_, r)| r.is_none())
            .map(|(slot, _)| slot)
            .collect()
    }

    /// Detect dead servers and replace each with a fresh process whose state
    /// is rebuilt from matrix metadata plus the latest checkpoint. The route
    /// table flips to the replacement (bumping the recovery epoch) only
    /// after it is fully initialized, so a concurrent client never reaches a
    /// half-built server. Returns the slots recovered; empty when nothing is
    /// dead *or* when another process is already mid-recovery.
    pub fn recover_dead_servers(&self, ctx: &mut SimCtx) -> Vec<usize> {
        let Some(_guard) = self.in_recovery.try_lock() else {
            return Vec::new();
        };
        let mut recovered = Vec::new();
        for slot in 0..self.route.n_slots() {
            if ctx.is_alive(self.route.resolve(slot)) {
                continue;
            }
            let respawn = {
                let mut stats = self.stats.lock();
                stats.respawns += 1;
                stats.respawns
            };
            let name = format!("ps-server-{slot}r{respawn}");
            let fresh = ctx.spawn_daemon(&name, ps_server_main);
            // Replay metadata, then load checkpointed values.
            let metas: Vec<_> = self.matrices.lock().clone();
            for (id, plan, init) in &metas {
                let req = CreateReq {
                    id: *id,
                    plan: Arc::clone(plan),
                    init: init.clone(),
                    slot,
                };
                let _: () = ctx.call(fresh, tags::CREATE, req, 96).downcast();
            }
            let req = RestoreReq {
                storage: self.storage,
                key: slot as u64,
            };
            let restored: bool = ctx.call(fresh, tags::RESTORE, req, 48).downcast();
            {
                let mut stats = self.stats.lock();
                stats.recoveries += 1;
                if !restored {
                    stats.silent_reinits += 1;
                }
            }
            ctx.metric_add("ps.fleet.recoveries", 1);
            if !restored {
                ctx.metric_add("ps.fleet.silent_reinits", 1);
            }
            ctx.trace_mark_with("ps.fleet.recover", slot as u64);
            self.route.set(slot, fresh);
            recovered.push(slot);
        }
        recovered
    }
}

impl LivenessProbe for PsFleet {
    /// Scheduler hook: heartbeat the fleet, and when any slot misses the
    /// ping deadline, run dead-server recovery. Counts replaced servers.
    fn probe(&self, ctx: &mut SimCtx) -> u64 {
        if self.ping_all(ctx).is_empty() {
            return 0;
        }
        self.recover_dead_servers(ctx).len() as u64
    }
}

/// Coordinator-side manager of the parameter-server fleet.
pub struct PsMaster {
    fleet: Arc<PsFleet>,
    next_id: u64,
    pub config: PsConfig,
}

impl PsMaster {
    pub fn new(servers: Vec<ProcId>, storage: ProcId, config: PsConfig) -> PsMaster {
        assert!(!servers.is_empty(), "need at least one PS-server");
        PsMaster {
            fleet: Arc::new(PsFleet::new(servers, storage)),
            next_id: 1,
            config,
        }
    }

    pub fn n_servers(&self) -> usize {
        self.fleet.route.n_slots()
    }

    pub fn route(&self) -> Arc<RouteTable> {
        self.fleet.route()
    }

    /// The shared fleet view (register it as a scheduler liveness probe).
    pub fn fleet(&self) -> Arc<PsFleet> {
        Arc::clone(&self.fleet)
    }

    /// Servers replaced after failures.
    pub fn recoveries(&self) -> u64 {
        self.fleet.recoveries()
    }

    /// Recoveries that found no checkpoint to restore from.
    pub fn silent_reinits(&self) -> u64 {
        self.fleet.silent_reinits()
    }

    fn value_bytes(&self) -> u64 {
        if self.config.compress {
            4
        } else {
            8
        }
    }

    /// Scatter a lifecycle request to every slot through the shared request
    /// fabric — the same retry/re-resolution pipeline data ops use, so a
    /// server dying mid-create or mid-checkpoint is recovered, not hung on.
    fn fabric_call<P: Any + Send + Sync>(
        &self,
        ctx: &mut SimCtx,
        tag: u32,
        reqs: Vec<(usize, P, u64)>,
    ) -> Vec<ps2_simnet::Envelope> {
        let router = PsRouter {
            route: &self.fleet.route,
            fleet: Some(&self.fleet),
        };
        let n = reqs.len() as u64;
        fabric::call_slots(ctx, &router, &ps_policy(), tags::name(tag), tag, reqs, n)
    }

    /// Allocate a `rows × dim` matrix across the servers.
    pub fn create_matrix(
        &mut self,
        ctx: &mut SimCtx,
        dim: u64,
        rows: u32,
        partitioning: Partitioning,
        init: InitKind,
    ) -> MatrixHandle {
        let id = MatrixId(self.next_id);
        self.next_id += 1;
        let route = self.fleet.route();
        let plan = Arc::new(PartitionPlan::new(dim, rows, route.n_slots(), partitioning));
        // Metadata is registered *before* the scatter so a recovery racing
        // the create replays this matrix into any replacement server; the
        // fabric's resend of a CreateReq is idempotent server-side.
        self.fleet
            .matrices
            .lock()
            .push((id, Arc::clone(&plan), init.clone()));
        let reqs: Vec<(usize, CreateReq, u64)> = (0..route.n_slots())
            .map(|slot| {
                let req = CreateReq {
                    id,
                    plan: Arc::clone(&plan),
                    init: init.clone(),
                    slot,
                };
                (slot, req, 96)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::CREATE, reqs);
        MatrixHandle {
            id,
            plan,
            route,
            value_bytes: self.value_bytes(),
            fleet: Some(Arc::clone(&self.fleet)),
        }
    }

    /// Release a matrix on all servers.
    pub fn free_matrix(&mut self, ctx: &mut SimCtx, handle: &MatrixHandle) {
        self.fleet
            .matrices
            .lock()
            .retain(|(id, _, _)| *id != handle.id);
        let route = self.fleet.route();
        let reqs: Vec<(usize, FreeReq, u64)> = (0..route.n_slots())
            .map(|slot| (slot, FreeReq { id: handle.id }, 32))
            .collect();
        let _ = self.fabric_call(ctx, tags::FREE, reqs);
    }

    /// Checkpoint every server's shards to the reliable external storage
    /// (paper §5.3 "periodically checkpoints the model parameters").
    pub fn checkpoint_all(&mut self, ctx: &mut SimCtx) {
        let route = self.fleet.route();
        let reqs: Vec<(usize, CheckpointReq, u64)> = (0..route.n_slots())
            .map(|slot| {
                let req = CheckpointReq {
                    storage: self.fleet.storage,
                    key: slot as u64,
                };
                (slot, req, 48)
            })
            .collect();
        let _ = self.fabric_call(ctx, tags::CHECKPOINT, reqs);
    }

    /// Detect dead servers and replace each with a fresh process whose state
    /// is rebuilt from matrix metadata plus the latest checkpoint. Updates
    /// the shared route table so existing handles keep working. Returns the
    /// slots recovered.
    pub fn recover_dead_servers(&mut self, ctx: &mut SimCtx) -> Vec<usize> {
        self.fleet.recover_dead_servers(ctx)
    }
}
