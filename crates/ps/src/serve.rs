//! # Serving-workload agents — aggregate open-loop pull clients
//!
//! The paper's premise is a parameter server absorbing traffic from
//! *millions of users*; a thread-per-proc simulation tops out at hundreds of
//! endpoints. This module models serving scale the way real load generators
//! do: one steppable [`ServeClientAgent`] (no OS thread, stepped inline by
//! the scheduler) stands in for **thousands of users**, each with its own
//! per-user issue/completion state and an exact open-loop schedule.
//!
//! *Open loop* means arrival times are fixed by the configured rate, not by
//! reply progress — a slow fleet faces a growing backlog instead of a
//! conveniently self-throttling one, which is what makes tail latency under
//! load honest. User `u` of `users` issues its `k`-th pull at exactly
//! `(u·period)/users + k·period`, so the aggregate stream is a uniform
//! interleaving at `users/period` requests per second and every user's
//! interarrival is exactly `period`.
//!
//! Row selection models NuPS-style skew: with probability
//! [`ServeClientConfig::zipf_fraction`] the row is drawn from a Zipf
//! distribution over all rows (rank-`r` mass ∝ `1/r^s`), otherwise
//! uniformly. Metrics land under the same `ps.client.*` names the training
//! fabric uses (`ps.client.op.pull.latency` etc.), so the existing SLO
//! objectives, watchdog burn-rate alerts, and report tables work unchanged.

use std::collections::HashMap;
use std::sync::Arc;

use ps2_simnet::{Envelope, Proc, ProcId, SimCtx, SimTime, StepCtx};
use rand::rngs::StdRng;
use rand::Rng;

use crate::plan::{MatrixId, PartitionPlan, PlanKind};
use crate::protocol::{tags, ColsSel, CreateReq, InitKind, PullReq};

/// Request-header wire bytes, matching the training client's accounting.
const HDR: u64 = 48;

/// Everything one aggregate client agent needs to drive its users.
#[derive(Clone)]
pub struct ServeClientConfig {
    /// The PS fleet, indexed by slot (`plan.row_owner` routes into this).
    pub servers: Vec<ProcId>,
    /// The served (pre-trained) model table.
    pub matrix: MatrixId,
    pub plan: Arc<PartitionPlan>,
    /// Simulated users this one agent stands in for.
    pub users: u32,
    /// Per-user think time: each user issues one pull every `user_period`.
    pub user_period: SimTime,
    /// How long the generator issues new arrivals; the agent then drains
    /// outstanding replies and finishes.
    pub duration: SimTime,
    /// Probability in `[0, 1]` that a pull targets a Zipf-skewed row.
    pub zipf_fraction: f64,
    /// Zipf exponent `s` (rank-`r` mass ∝ `1/r^s`).
    pub zipf_exponent: f64,
    /// Bytes per value on the wire (8, or 4 with compression).
    pub value_bytes: u64,
}

impl ServeClientConfig {
    /// Total arrivals this agent will issue: every `i` with
    /// `(i·period)/users < duration` — exactly `users · duration/period`
    /// when `duration` is a whole number of periods.
    pub fn total_arrivals(&self) -> u64 {
        self.duration.as_nanos() * self.users as u64 / self.user_period.as_nanos()
    }
}

/// Per-user serving state (the "closed bookkeeping" of an open-loop user:
/// issues are scheduled, completions are counted).
struct UserState {
    issued: u32,
    completed: u32,
}

/// One in-flight pull, keyed by correlation id.
struct InFlight {
    user: u32,
    issued_at: SimTime,
    req_bytes: u64,
}

/// An aggregate open-loop client: one steppable agent modeling
/// [`ServeClientConfig::users`] users. Spawn with
/// [`ps2_simnet::SimCtx::spawn_agent`] (non-daemon: the agent finishes —
/// and lets the simulation end — once the duration has elapsed and every
/// outstanding reply drained).
pub struct ServeClientAgent {
    cfg: ServeClientConfig,
    /// Cumulative Zipf mass per rank; binary-searched per skewed pull.
    zipf_cdf: Vec<f64>,
    users: Vec<UserState>,
    /// Spawn clock, the origin of the arrival schedule (set in `on_start`).
    start: SimTime,
    /// Next arrival index `i` (time `(i·period)/users`, user `i % users`).
    next_arrival: u64,
    total_arrivals: u64,
    outstanding: HashMap<u64, InFlight>,
    completed: u64,
}

impl ServeClientAgent {
    pub fn new(cfg: ServeClientConfig) -> ServeClientAgent {
        assert!(
            matches!(cfg.plan.kind, PlanKind::Row { .. }),
            "serving pulls whole rows; build the table with Partitioning::Row"
        );
        assert!((0.0..=1.0).contains(&cfg.zipf_fraction));
        assert!(cfg.users > 0, "an aggregate client needs at least one user");
        let rows = cfg.plan.rows as usize;
        let mut zipf_cdf = Vec::with_capacity(rows);
        let mut acc = 0.0f64;
        for r in 0..rows {
            acc += 1.0 / ((r + 1) as f64).powf(cfg.zipf_exponent);
            zipf_cdf.push(acc);
        }
        let users = (0..cfg.users)
            .map(|_| UserState {
                issued: 0,
                completed: 0,
            })
            .collect();
        let total_arrivals = cfg.total_arrivals();
        ServeClientAgent {
            cfg,
            zipf_cdf,
            users,
            start: SimTime::ZERO,
            next_arrival: 0,
            total_arrivals,
            outstanding: HashMap::new(),
            completed: 0,
        }
    }

    /// Virtual time of arrival `i`, relative to the agent's spawn clock.
    fn arrival_offset(&self, i: u64) -> SimTime {
        SimTime(i * self.cfg.user_period.as_nanos() / self.cfg.users as u64)
    }

    fn pick_row(&self, rng: &mut StdRng) -> u32 {
        let rows = self.cfg.plan.rows;
        if rng.gen::<f64>() < self.cfg.zipf_fraction {
            let total = *self.zipf_cdf.last().expect("at least one row");
            let x = rng.gen::<f64>() * total;
            self.zipf_cdf
                .partition_point(|&c| c < x)
                .min(rows as usize - 1) as u32
        } else {
            rng.gen_range(0..rows)
        }
    }

    fn issue_due(&mut self, ctx: &mut StepCtx<'_>, start: SimTime) {
        let now = ctx.now();
        while self.next_arrival < self.total_arrivals
            && start + self.arrival_offset(self.next_arrival) <= now
        {
            let i = self.next_arrival;
            self.next_arrival += 1;
            let user = (i % self.cfg.users as u64) as u32;
            let row = self.pick_row(ctx.rng());
            let req = PullReq {
                id: self.cfg.matrix,
                row,
                cols: ColsSel::All,
                value_bytes: self.cfg.value_bytes,
            };
            let dst = self.cfg.servers[self.cfg.plan.row_owner(row)];
            let token = ctx.req_begin_batch("pull", 1).first().copied();
            ctx.metric_add("ps.client.envelopes", 1);
            let corr = ctx.send_request_traced(dst, tags::PULL, req, HDR, token);
            self.users[user as usize].issued += 1;
            self.outstanding.insert(
                corr,
                InFlight {
                    user,
                    issued_at: now,
                    req_bytes: HDR,
                },
            );
        }
        if self.next_arrival < self.total_arrivals {
            let next_at = start + self.arrival_offset(self.next_arrival);
            ctx.set_timer(next_at.saturating_sub(now));
        }
    }

    fn maybe_finish(&mut self, ctx: &mut StepCtx<'_>) {
        if self.next_arrival >= self.total_arrivals && self.outstanding.is_empty() {
            debug_assert_eq!(self.completed, self.total_arrivals);
            ctx.finish();
        }
    }
}

impl Proc for ServeClientAgent {
    fn on_start(&mut self, ctx: &mut StepCtx<'_>) {
        // Remember our spawn clock as the schedule origin by anchoring
        // arrival 0 now; all offsets are relative to this instant.
        self.start = ctx.now();
        if self.total_arrivals == 0 {
            ctx.finish();
            return;
        }
        let start = self.start;
        self.issue_due(ctx, start);
        self.maybe_finish(ctx);
    }

    fn on_timer(&mut self, ctx: &mut StepCtx<'_>, _timer: u64) {
        let start = self.start;
        self.issue_due(ctx, start);
        self.maybe_finish(ctx);
    }

    fn on_message(&mut self, ctx: &mut StepCtx<'_>, env: Envelope) {
        if !env.is_reply() {
            return;
        }
        let Some(inf) = self.outstanding.remove(&env.corr) else {
            return;
        };
        self.completed += 1;
        self.users[inf.user as usize].completed += 1;
        ctx.metric_add("ps.client.op.pull.count", 1);
        ctx.metric_add("ps.client.op.pull.reqs", 1);
        ctx.metric_add("ps.client.op.pull.bytes", inf.req_bytes + env.bytes);
        ctx.metric_add("ps.client.op.pull.rows", 1);
        ctx.metric_observe("ps.client.op.pull.latency", ctx.now() - inf.issued_at);
        self.maybe_finish(ctx);
    }
}

/// Load the served model into the PS fleet: one idempotent CREATE per
/// server, issued from a thread proc (the serve coordinator). `init` is the
/// checkpoint stand-in — [`InitKind::Uniform`] gives a deterministic
/// "trained" table without running a training job first.
pub fn create_serve_table(
    ctx: &mut SimCtx,
    servers: &[ProcId],
    id: MatrixId,
    plan: &Arc<PartitionPlan>,
    init: InitKind,
) {
    for (slot, &server) in servers.iter().enumerate() {
        let req = CreateReq {
            id,
            plan: Arc::clone(plan),
            init: init.clone(),
            slot,
        };
        ctx.call(server, tags::CREATE, req, 96);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partitioning;
    use crate::server::PsServerAgent;
    use ps2_simnet::SimBuilder;

    fn run_serve_window(users: u32, period_ms: u64, duration_ms: u64) -> ps2_simnet::SimReport {
        let mut sim = SimBuilder::new().seed(7).build();
        let servers: Vec<_> = (0..4)
            .map(|i| sim.spawn_agent_daemon(&format!("ps-{i}"), PsServerAgent::new()))
            .collect();
        let plan = Arc::new(PartitionPlan::new(16, 512, 4, Partitioning::Row));
        let id = MatrixId(9);
        sim.spawn("coord", move |ctx| {
            create_serve_table(ctx, &servers, id, &plan, InitKind::Zero);
            let cfg = ServeClientConfig {
                servers,
                matrix: id,
                plan,
                users,
                user_period: SimTime::from_millis(period_ms),
                duration: SimTime::from_millis(duration_ms),
                zipf_fraction: 0.5,
                zipf_exponent: 1.0,
                value_bytes: 8,
            };
            ctx.spawn_agent("clients", ServeClientAgent::new(cfg));
        });
        sim.run().expect("serve test sim failed")
    }

    /// One aggregate agent with N=1000 users at 1 pull / 10 ms / user over a
    /// 100 ms window issues *exactly* the configured open-loop rate:
    /// 1000 × 10 = 10,000 pulls — no more, no fewer — and drains them all.
    #[test]
    fn aggregate_agent_issues_exact_open_loop_rate() {
        let report = run_serve_window(1000, 10, 100);
        assert_eq!(report.metrics.counter("ps.client.envelopes"), 10_000);
        assert_eq!(report.metrics.counter("ps.client.op.pull.count"), 10_000);
        let lat = report
            .metrics
            .hist("ps.client.op.pull.latency")
            .expect("pull latency histogram");
        assert_eq!(lat.count(), 10_000);
    }

    /// A window that is not a whole number of periods floors: 1000 users at
    /// 10 ms over 25 ms → arrivals strictly before 25 ms → 2500 pulls.
    #[test]
    fn partial_window_floors_arrival_count() {
        let report = run_serve_window(1000, 10, 25);
        assert_eq!(report.metrics.counter("ps.client.envelopes"), 2_500);
        assert_eq!(report.metrics.counter("ps.client.op.pull.count"), 2_500);
    }
}
