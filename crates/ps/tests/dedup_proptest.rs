//! Duplicate-delivery idempotency (paper §5.3): when a push's reply misses
//! the attempt deadline the fabric resends the identical payload, so a
//! *slow-but-alive* server eventually receives the mutation twice. The
//! server-side op-id dedup table must apply it exactly once — both for a
//! bare request and for one riding an envelope.
//!
//! The episode is driven end-to-end, not by injecting duplicates: a jammer
//! process issues a server-side zip expensive enough (~15 s of simulated
//! compute per server) to outlast the fabric's 10 s attempt timeout, so the
//! push queued behind it genuinely times out, genuinely retries, and both
//! copies genuinely reach the server.

use std::sync::Arc;

use proptest::prelude::*;
use ps2_ps::{deploy_ps, InitKind, Partitioning, PsBatch, PsConfig, PsMaster, ZipMutFn, ZipSegs};
use ps2_simnet::{SimBuilder, SimTime};

/// Zip cost per element, chosen so each server burns ~15 s of virtual time
/// (1000 owned columns × 30 Mflops / 2 Gflops/s) — past the 10 s client
/// attempt timeout, short of the 5-stale-attempts abort.
const JAM_FLOPS_PER_ELEM: u64 = 30_000_000;

/// Returns (pulled row, fabric retries, fabric timeouts) after one
/// jam → push → retry → dedup episode.
fn run_episode(servers: usize, seed: u64, value: f64, enveloped: bool) -> (Vec<f64>, u64, u64) {
    let dim = servers as u64 * 1000;
    let mut sim = SimBuilder::new().seed(seed).build();
    let (server_procs, storage) = deploy_ps(&mut sim, servers, 500e6);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(server_procs, storage, PsConfig::default());
        let h = master.create_matrix(ctx, dim, 1, Partitioning::Column, InitKind::Zero);
        // Jam every server: a no-op zip whose compute charge keeps each
        // server busy well past the push's attempt deadline. The zip is
        // itself a retried mutation, so it doubles as dedup coverage for
        // the zip path (a double-applied no-op is invisible, but a panic
        // or missing reply is not).
        let jam = h.clone();
        ctx.spawn_daemon("jammer", move |jctx| {
            let f: ZipMutFn = Arc::new(|_zs: &mut ZipSegs<'_>| {});
            jam.zip(jctx, &[0], f, JAM_FLOPS_PER_ELEM);
        });
        // Let the jam reach the servers before the push does.
        ctx.advance(SimTime::from_secs_f64(1.0));
        let update = vec![value; dim as usize];
        if enveloped {
            let mut batch = PsBatch::new();
            h.push_dense_many_in(ctx, &mut batch, &[(0, update)]);
            batch.flush(ctx);
        } else {
            h.push_dense(ctx, 0, &update);
        }
        h.pull_row(ctx, 0)
    });
    let report = sim.run().unwrap();
    (
        out.take(),
        report.metrics.counter("ps.client.retries"),
        report.metrics.counter("ps.client.timeouts"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A bare push whose reply times out is retried and applied exactly
    /// once.
    #[test]
    fn retried_bare_push_applies_once(
        servers in 1usize..4,
        seed in 0u64..1_000,
        value in 0.5f64..10.0
    ) {
        let (pulled, retries, timeouts) = run_episode(servers, seed, value, false);
        // The episode must actually exercise the retry path — otherwise
        // this test silently degrades into plain push/pull.
        prop_assert!(retries >= 1, "no retry happened (timeouts={timeouts})");
        prop_assert!(timeouts >= 1);
        prop_assert_eq!(pulled.len() as u64, servers as u64 * 1000);
        for got in pulled {
            prop_assert!(got == value, "push applied {} times", got / value);
        }
    }

    /// The same episode with the push riding an envelope: the retried
    /// container must dedup per sub-request.
    #[test]
    fn retried_enveloped_push_applies_once(
        servers in 1usize..4,
        seed in 0u64..1_000,
        value in 0.5f64..10.0
    ) {
        let (pulled, retries, timeouts) = run_episode(servers, seed, value, true);
        prop_assert!(retries >= 1, "no retry happened (timeouts={timeouts})");
        prop_assert!(timeouts >= 1);
        prop_assert_eq!(pulled.len() as u64, servers as u64 * 1000);
        for got in pulled {
            prop_assert!(got == value, "push applied {} times", got / value);
        }
    }
}
