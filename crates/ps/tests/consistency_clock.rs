//! Property tests for the consistency layer: the clock service's staleness
//! invariant and the parameter cache's coherence rules.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use ps2_ps::{
    clock_main, deploy_ps, ClockClient, ConsistencyMode, InitKind, ParamCache, Partitioning,
    PsConfig, PsMaster,
};
use ps2_simnet::{SimBuilder, SimTime};

/// One observed grant: `(worker, iteration, min_clock witness)`, pushed in
/// the order the workers were actually released.
type Grant = (usize, u32, u32);

/// Drive `workers` heterogeneous workers through `iters` iterations under
/// staleness `bound` and return every grant in release order.
fn run_clock_workers(workers: usize, bound: u32, iters: u32, seed: u64) -> Vec<Grant> {
    let mut sim = SimBuilder::new().seed(seed).build();
    let clock = sim.spawn_daemon("clock", clock_main(workers));
    let grants: Arc<Mutex<Vec<Grant>>> = Arc::new(Mutex::new(Vec::new()));
    for w in 0..workers {
        let grants = Arc::clone(&grants);
        sim.spawn(&format!("worker-{w}"), move |ctx| {
            let client = ClockClient::new(clock, w);
            for t in 1..=iters {
                let min = client.wait(ctx, t, bound);
                grants.lock().push((w, t, min));
                // Heterogeneous per-iteration compute: worker w takes
                // (w+1)·10ms, so the fleet spreads out fast.
                ctx.advance(SimTime::from_secs_f64((w + 1) as f64 * 0.010));
                client.report(ctx, t);
            }
        });
    }
    sim.run().expect("clock sim failed");
    let grants = grants.lock();
    grants.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The staleness invariant: under `Ssp { bound: s }` no worker ever
    /// starts iteration `t` unless the slowest clock is ≥ `t − s − 1`. The
    /// grant's `min_clock` is the daemon's own witness of the slowest clock
    /// at release time.
    #[test]
    fn no_grant_violates_the_staleness_bound(
        workers in 2usize..6,
        bound in 0u32..5,
        iters in 3u32..12,
        seed in 1u64..500,
    ) {
        let grants = run_clock_workers(workers, bound, iters, seed);
        // Every worker completed every iteration.
        prop_assert_eq!(grants.len(), workers * iters as usize);
        for &(w, t, min) in &grants {
            prop_assert!(
                min + bound + 1 >= t,
                "worker {} started iteration {} with min clock {} under bound {}",
                w, t, min, bound
            );
        }
    }

    /// `s = 0` reproduces BSP-identical iteration ordering: no worker is
    /// released into iteration `t + 1` before every worker has been
    /// released into (and therefore logged) iteration `t`.
    #[test]
    fn zero_bound_is_a_barrier(
        workers in 2usize..6,
        iters in 3u32..10,
        seed in 1u64..500,
    ) {
        let grants = run_clock_workers(workers, 0, iters, seed);
        for pair in grants.windows(2) {
            prop_assert!(
                pair[1].1 >= pair[0].1,
                "iteration went backwards across the barrier: {:?} then {:?}",
                pair[0], pair[1]
            );
        }
        // Each iteration releases the full fleet exactly once.
        for t in 1..=iters {
            let mut ws: Vec<usize> =
                grants.iter().filter(|g| g.1 == t).map(|g| g.0).collect();
            ws.sort_unstable();
            prop_assert_eq!(ws, (0..workers).collect::<Vec<_>>());
        }
    }
}

#[test]
fn param_cache_serves_within_the_bound_and_expires_after_it() {
    let mut sim = SimBuilder::new().seed(7).build();
    let (servers, storage) = deploy_ps(&mut sim, 3, 500e6);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(servers, storage, PsConfig::default());
        let h = master.create_matrix(ctx, 1_000, 1, Partitioning::Column, InitKind::Zero);
        h.push_sparse(ctx, 0, &[(3, 1.0), (500, 2.0), (999, 3.0)]);

        let mut cache = ParamCache::new(ConsistencyMode::Ssp { bound: 2 });
        cache.advance_clock(1);
        let cols = [3u64, 500, 999];
        let v1 = cache.pull_cols(ctx, &h, 0, &cols);
        // Clocks 2 and 3 are within the bound of a clock-1 fetch: both
        // pulls must be cache hits (no change after a server-side write).
        h.push_sparse(ctx, 0, &[(3, 10.0)]);
        cache.advance_clock(2);
        let v2 = cache.pull_cols(ctx, &h, 0, &cols);
        cache.advance_clock(3);
        let v3 = cache.pull_cols(ctx, &h, 0, &cols);
        // Clock 4 is one past the ttl: the entries expire and the re-pull
        // observes the server-side write.
        cache.advance_clock(4);
        let v4 = cache.pull_cols(ctx, &h, 0, &cols);
        (v1, v2, v3, v4)
    });
    let report = sim.run().unwrap();
    let (v1, v2, v3, v4) = out.take();
    assert_eq!(v1, vec![1.0, 2.0, 3.0]);
    assert_eq!(v2, v1, "within the bound the cache must serve stale values");
    assert_eq!(v3, v1);
    assert_eq!(v4, vec![11.0, 2.0, 3.0]);
    // Two fully-cached pulls of three columns each.
    assert_eq!(report.metrics.counter("ps.cache.hit"), 6);
    assert_eq!(report.metrics.counter("ps.cache.miss"), 6);
}

#[test]
fn param_cache_under_bsp_never_serves_across_iterations() {
    let mut sim = SimBuilder::new().seed(8).build();
    let (servers, storage) = deploy_ps(&mut sim, 2, 500e6);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(servers, storage, PsConfig::default());
        let h = master.create_matrix(ctx, 100, 1, Partitioning::Column, InitKind::Zero);
        h.push_sparse(ctx, 0, &[(7, 1.0)]);
        let mut cache = ParamCache::new(ConsistencyMode::Bsp);
        cache.advance_clock(1);
        let a = cache.pull_cols(ctx, &h, 0, &[7]);
        h.push_sparse(ctx, 0, &[(7, 1.0)]);
        cache.advance_clock(2);
        let b = cache.pull_cols(ctx, &h, 0, &[7]);
        (a, b)
    });
    let report = sim.run().unwrap();
    let (a, b) = out.take();
    assert_eq!(a, vec![1.0]);
    assert_eq!(b, vec![2.0], "BSP must re-pull every iteration");
    assert_eq!(report.metrics.counter("ps.cache.hit"), 0);
}

#[test]
fn param_cache_reads_its_own_writes() {
    let mut sim = SimBuilder::new().seed(9).build();
    let (servers, storage) = deploy_ps(&mut sim, 2, 500e6);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(servers, storage, PsConfig::default());
        let h = master.create_matrix(ctx, 100, 1, Partitioning::Column, InitKind::Zero);
        let mut cache = ParamCache::new(ConsistencyMode::Ssp { bound: 3 });
        cache.advance_clock(1);
        let before = cache.pull_cols(ctx, &h, 0, &[7, 9]);
        // The worker's own push lands in the cache immediately, even while
        // the wire push is still settling.
        let pending = h.push_sparse_begin(ctx, 0, &[(7, 5.0)]);
        cache.note_push(0, &[(7, 5.0)]);
        let after = cache.pull_cols(ctx, &h, 0, &[7, 9]);
        h.push_wait(ctx, pending);
        (before, after)
    });
    sim.run().unwrap();
    let (before, after) = out.take();
    assert_eq!(before, vec![0.0, 0.0]);
    assert_eq!(after, vec![5.0, 0.0]);
}

#[test]
fn split_phase_push_applies_exactly_once() {
    let mut sim = SimBuilder::new().seed(10).build();
    let (servers, storage) = deploy_ps(&mut sim, 3, 500e6);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(servers, storage, PsConfig::default());
        let h = master.create_matrix(ctx, 1_000, 1, Partitioning::Column, InitKind::Zero);
        // Overlapped pushes across "iterations": begin t+1 before waiting
        // on t, as the pipelined worker loop does.
        let mut inflight = None;
        for t in 1..=5u32 {
            let pairs = vec![(3u64, 1.0), (700, f64::from(t))];
            if let Some(p) = inflight.take() {
                h.push_wait(ctx, p);
            }
            inflight = Some(h.push_sparse_begin(ctx, 0, &pairs));
        }
        if let Some(p) = inflight.take() {
            h.push_wait(ctx, p);
        }
        h.pull_cols(ctx, 0, &[3, 700])
    });
    sim.run().unwrap();
    let got = out.take();
    assert_eq!(got, vec![5.0, 15.0]);
}
