//! Property-based tests for the parameter-server substrate.

use proptest::prelude::*;
use ps2_ps::{deploy_ps, ElemOp, InitKind, PartitionPlan, Partitioning, PsConfig, PsMaster};
use ps2_simnet::{SimBuilder, SimCtx};

fn with_ps<T, F>(n: usize, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&mut SimCtx, &mut PsMaster) -> T + Send + 'static,
{
    let mut sim = SimBuilder::new().seed(seed).build();
    let (servers, storage) = deploy_ps(&mut sim, n, 500e6);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(servers, storage, PsConfig::default());
        f(ctx, &mut master)
    });
    sim.run().unwrap();
    out.take()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Column plans cover every column exactly once, for any (dim, slots).
    #[test]
    fn plans_partition_the_dimension(dim in 1u64..100_000, slots in 1usize..40, rot in 0usize..40) {
        let plan = PartitionPlan::new(dim, 1, slots, Partitioning::ColumnRotated(rot));
        let ranges = plan.column_ranges();
        let covered: u64 = ranges.iter().map(|&(_, lo, hi)| hi - lo).sum();
        prop_assert_eq!(covered, dim);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].2, w[1].1);
        }
        // col_owner agrees with the ranges at the boundaries.
        for &(slot, lo, hi) in &ranges {
            prop_assert_eq!(plan.col_owner(lo), slot);
            prop_assert_eq!(plan.col_owner(hi - 1), slot);
        }
    }

    /// Push-then-pull is the identity for arbitrary sparse updates, on any
    /// cluster size.
    #[test]
    fn sparse_push_pull_identity(
        servers in 1usize..7,
        dim in 1u64..2_000,
        updates in prop::collection::btree_map(0u64..2_000, -100.0f64..100.0, 0..40)
    ) {
        let updates: Vec<(u64, f64)> = updates.into_iter()
            .filter(|&(j, _)| j < dim)
            .collect();
        let got = with_ps(servers, 1, move |ctx, m| {
            let h = m.create_matrix(ctx, dim, 1, Partitioning::Column, InitKind::Zero);
            h.push_sparse(ctx, 0, &updates);
            let full = h.pull_row(ctx, 0);
            (updates, full)
        });
        let (updates, full) = got;
        let mut expect = vec![0.0; dim as usize];
        for (j, v) in updates {
            expect[j as usize] += v;
        }
        prop_assert_eq!(full, expect);
    }

    /// Server-side dot equals the local dot for random vectors, regardless
    /// of how many servers the columns are spread over.
    #[test]
    fn distributed_dot_matches_local(
        servers in 1usize..7,
        values in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..200)
    ) {
        let dim = values.len() as u64;
        let (got, expect) = with_ps(servers, 2, move |ctx, m| {
            let h = m.create_matrix(ctx, dim, 2, Partitioning::Column, InitKind::Zero);
            let a: Vec<f64> = values.iter().map(|&(x, _)| x).collect();
            let b: Vec<f64> = values.iter().map(|&(_, y)| y).collect();
            h.push_dense(ctx, 0, &a);
            h.push_dense(ctx, 1, &b);
            let local: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            (h.dot(ctx, 0, 1), local)
        });
        prop_assert!((got - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
    }

    /// Element-wise server ops match their local counterparts.
    #[test]
    fn elem_ops_match_local(
        servers in 1usize..5,
        values in prop::collection::vec((-10.0f64..10.0, 0.5f64..10.0), 1..100),
        op_idx in 0usize..4
    ) {
        let op = [ElemOp::Add, ElemOp::Sub, ElemOp::Mul, ElemOp::Div][op_idx];
        let dim = values.len() as u64;
        let (got, expect) = with_ps(servers, 3, move |ctx, m| {
            let h = m.create_matrix(ctx, dim, 3, Partitioning::Column, InitKind::Zero);
            let a: Vec<f64> = values.iter().map(|&(x, _)| x).collect();
            let b: Vec<f64> = values.iter().map(|&(_, y)| y).collect();
            h.push_dense(ctx, 0, &a);
            h.push_dense(ctx, 1, &b);
            h.elem(ctx, 2, 0, 1, op);
            let expect: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| op.apply(x, y)).collect();
            (h.pull_row(ctx, 2), expect)
        });
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() <= 1e-9 * (1.0 + e.abs()));
        }
    }

    /// Row plans and column plans hold the same data; only placement
    /// differs.
    #[test]
    fn row_and_column_plans_agree_on_contents(
        servers in 1usize..5,
        dim in 1u64..500,
        row in 0u32..4
    ) {
        let got = with_ps(servers, 4, move |ctx, m| {
            let seed = 9;
            let init = InitKind::Uniform { lo: -1.0, hi: 1.0, seed };
            let col = m.create_matrix(ctx, dim, 4, Partitioning::Column, init.clone());
            let rowp = m.create_matrix(ctx, dim, 4, Partitioning::Row, init);
            (col.pull_row(ctx, row), rowp.pull_row(ctx, row))
        });
        prop_assert_eq!(got.0, got.1);
    }
}
