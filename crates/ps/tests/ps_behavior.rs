//! Behavioural tests for the parameter-server substrate.

use std::sync::Arc;

use ps2_ps::{
    deploy_ps, AggKind, ElemOp, InitKind, MatrixHandle, Partitioning, PsConfig, PsMaster,
};
use ps2_simnet::{SimBuilder, SimCtx, SimTime};

const DISK: f64 = 500e6;

/// Run `f` in a coordinator process against `n` PS-servers.
fn with_ps<T, F>(n: usize, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&mut SimCtx, &mut PsMaster) -> T + Send + 'static,
{
    with_ps_cfg(n, seed, PsConfig::default(), f)
}

fn with_ps_cfg<T, F>(n: usize, seed: u64, cfg: PsConfig, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&mut SimCtx, &mut PsMaster) -> T + Send + 'static,
{
    let mut sim = SimBuilder::new().seed(seed).build();
    let (servers, storage) = deploy_ps(&mut sim, n, DISK);
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut master = PsMaster::new(servers, storage, cfg);
        f(ctx, &mut master)
    });
    sim.run().unwrap();
    out.take()
}

fn dense(ctx: &mut SimCtx, m: &mut PsMaster, dim: u64, rows: u32) -> MatrixHandle {
    m.create_matrix(ctx, dim, rows, Partitioning::Column, InitKind::Zero)
}

#[test]
fn push_then_pull_round_trips_dense() {
    let got = with_ps(4, 1, |ctx, m| {
        let h = dense(ctx, m, 101, 2);
        let values: Vec<f64> = (0..101).map(|i| i as f64 * 0.5).collect();
        h.push_dense(ctx, 0, &values);
        (h.pull_row(ctx, 0), h.pull_row(ctx, 1), values)
    });
    assert_eq!(got.0, got.2);
    assert_eq!(got.1, vec![0.0; 101], "other rows must be untouched");
}

#[test]
fn sparse_push_and_pull_match_dense_state() {
    let got = with_ps(3, 1, |ctx, m| {
        let h = dense(ctx, m, 50, 1);
        let pairs = vec![(3u64, 1.5), (17, -2.0), (20, 4.0), (49, 9.0)];
        h.push_sparse(ctx, 0, &pairs);
        h.push_sparse(ctx, 0, &[(17, 1.0)]); // additive
        let cols: Vec<u64> = vec![0, 3, 17, 20, 49];
        let sparse = h.pull_cols(ctx, 0, &cols);
        let full = h.pull_row(ctx, 0);
        (sparse, full)
    });
    assert_eq!(got.0, vec![0.0, 1.5, -1.0, 4.0, 9.0]);
    assert_eq!(got.1[3], 1.5);
    assert_eq!(got.1[17], -1.0);
    assert_eq!(got.1.iter().filter(|&&v| v != 0.0).count(), 4);
}

#[test]
fn aggregations_sum_nnz_norm2_max() {
    let got = with_ps(4, 1, |ctx, m| {
        let h = dense(ctx, m, 64, 1);
        h.push_sparse(ctx, 0, &[(1, 3.0), (10, -4.0), (63, 12.0)]);
        (
            h.sum(ctx, 0),
            h.nnz(ctx, 0),
            h.norm2(ctx, 0),
            h.agg(ctx, 0, AggKind::Max),
        )
    });
    assert_eq!(got.0, 11.0);
    assert_eq!(got.1, 3);
    assert!((got.2 - 13.0).abs() < 1e-12); // sqrt(9+16+144)
    assert_eq!(got.3, 12.0);
}

#[test]
fn uniform_init_is_deterministic_and_in_range() {
    let pull = |seed: u64| {
        with_ps(3, 5, move |ctx, m| {
            let h = m.create_matrix(
                ctx,
                40,
                1,
                Partitioning::Column,
                InitKind::Uniform {
                    lo: -0.5,
                    hi: 0.5,
                    seed,
                },
            );
            h.pull_row(ctx, 0)
        })
    };
    let a = pull(7);
    let b = pull(7);
    let c = pull(8);
    assert_eq!(a, b);
    assert_ne!(a, c);
    assert!(a.iter().all(|&v| (-0.5..0.5).contains(&v)));
    // Not all equal (it is actually random-ish).
    assert!(a.iter().any(|&v| (v - a[0]).abs() > 1e-9));
}

#[test]
fn server_side_dot_axpy_elem_scale() {
    let got = with_ps(4, 1, |ctx, m| {
        let h = dense(ctx, m, 100, 4);
        let ones = vec![1.0; 100];
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        h.push_dense(ctx, 0, &ones);
        h.push_dense(ctx, 1, &ramp);
        // dot(ones, ramp) = sum 0..99 = 4950
        let d = h.dot(ctx, 0, 1);
        // row2 = ones; row2 += 2*ramp
        h.push_dense(ctx, 2, &ones);
        h.axpy(ctx, 2, 1, 2.0);
        let r2 = h.pull_row(ctx, 2);
        // row3 = row0 * row1 (elementwise)
        h.elem(ctx, 3, 0, 1, ElemOp::Mul);
        h.scale(ctx, 3, 0.5);
        let r3 = h.pull_row(ctx, 3);
        (d, r2, r3)
    });
    assert_eq!(got.0, 4950.0);
    assert_eq!(got.1[10], 21.0);
    assert_eq!(got.2[10], 5.0);
}

#[test]
fn zip_runs_user_update_over_colocated_segments() {
    // Adam-style: w -= eta * g / (sqrt(s) + eps), across three rows.
    let got = with_ps(4, 1, |ctx, m| {
        let h = dense(ctx, m, 64, 3);
        h.fill(ctx, 0, 10.0); // w
        h.fill(ctx, 1, 4.0); // s
        h.fill(ctx, 2, 2.0); // g
        h.zip(
            ctx,
            &[0, 1, 2],
            Arc::new(|zs: &mut ps2_ps::ZipSegs<'_>| {
                let (w, rest) = zs.segs.split_at_mut(1);
                let (s, g) = rest.split_at_mut(1);
                for i in 0..w[0].len() {
                    w[0][i] -= 0.5 * g[0][i] / (s[0][i].sqrt() + 1e-8);
                }
            }),
            4,
        );
        h.pull_row(ctx, 0)
    });
    for v in got {
        assert!((v - 9.5).abs() < 1e-6, "got {v}");
    }
}

#[test]
fn zip_map_folds_partials_with_combiner() {
    let got = with_ps(4, 1, |ctx, m| {
        let h = dense(ctx, m, 100, 2);
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        h.push_dense(ctx, 0, &ramp);
        h.fill(ctx, 1, 2.0);
        // max over i of a[i]*b[i] = 99*2
        let mx = h.zip_map(
            ctx,
            &[0, 1],
            Arc::new(|segs: &[&[f64]], _lo| {
                segs[0]
                    .iter()
                    .zip(segs[1])
                    .map(|(a, b)| a * b)
                    .fold(f64::NEG_INFINITY, f64::max)
            }),
            2,
            f64::NEG_INFINITY,
            f64::max,
        );
        // sum over i of a[i]+b[i] = 4950 + 200
        let sm = h.zip_map(
            ctx,
            &[0, 1],
            Arc::new(|segs: &[&[f64]], _lo| segs[0].iter().zip(segs[1]).map(|(a, b)| a + b).sum()),
            1,
            0.0,
            |a, b| a + b,
        );
        (mx, sm)
    });
    assert_eq!(got.0, 198.0);
    assert_eq!(got.1, 5150.0);
}

#[test]
fn block_ops_serve_lda_access_pattern() {
    let got = with_ps(3, 1, |ctx, m| {
        let h = dense(ctx, m, 30, 4); // 4 topics × 30 words
        let rows = [0u32, 1, 2, 3];
        h.push_block(
            ctx,
            &rows,
            &[
                (2, vec![1.0, 2.0, 3.0, 4.0]),
                (29, vec![9.0, 0.0, 0.0, 1.0]),
            ],
        );

        h.pull_block(ctx, &rows, &[2, 5, 29])
    });
    assert_eq!(got[0], vec![1.0, 2.0, 3.0, 4.0]);
    assert_eq!(got[1], vec![0.0; 4]);
    assert_eq!(got[2], vec![9.0, 0.0, 0.0, 1.0]);
}

#[test]
fn row_partitioned_matrix_serves_petuum_pattern() {
    let got = with_ps(3, 1, |ctx, m| {
        let h = m.create_matrix(ctx, 40, 6, Partitioning::Row, InitKind::Zero);
        let vals: Vec<f64> = (0..40).map(|i| i as f64).collect();
        h.push_dense(ctx, 4, &vals);
        (h.pull_row(ctx, 4), h.sum(ctx, 4), h.pull_row(ctx, 0))
    });
    assert_eq!(got.0.len(), 40);
    assert_eq!(got.0[39], 39.0);
    assert_eq!(got.1, 780.0);
    assert_eq!(got.2, vec![0.0; 40]);
}

#[test]
fn colocated_cross_ops_match_plain_ops() {
    let got = with_ps(4, 1, |ctx, m| {
        let a = dense(ctx, m, 80, 1);
        let b = m.create_matrix(ctx, 80, 1, Partitioning::Column, InitKind::Const(2.0));
        a.push_dense(ctx, 0, &vec![3.0; 80]);
        let d = a.cross_dot(ctx, &b, 0, 0);
        a.cross_elem(ctx, &b, 0, 0, ElemOp::Mul);
        (d, a.pull_row(ctx, 0))
    });
    assert_eq!(got.0, 3.0 * 2.0 * 80.0);
    assert_eq!(got.1, vec![6.0; 80]);
}

#[test]
fn misaligned_cross_dot_is_correct_but_moves_bytes_between_servers() {
    let run = |rotated: bool| {
        let mut sim = SimBuilder::new().seed(3).build();
        let (servers, storage) = deploy_ps(&mut sim, 4, DISK);
        let out = sim.spawn_collect("coordinator", move |ctx| {
            let mut m = PsMaster::new(servers, storage, PsConfig::default());
            let dim = 400_000u64;
            let a = m.create_matrix(ctx, dim, 1, Partitioning::Column, InitKind::Const(1.0));
            let p = if rotated {
                Partitioning::ColumnRotated(1)
            } else {
                Partitioning::Column
            };
            let b = m.create_matrix(ctx, dim, 1, p, InitKind::Const(2.0));
            let before = ctx.now();
            let d = a.cross_dot(ctx, &b, 0, 0);
            (d, ctx.now() - before)
        });
        sim.run().unwrap();
        out.take()
    };
    let (d_co, t_co) = run(false);
    let (d_mis, t_mis) = run(true);
    assert_eq!(d_co, 800_000.0);
    assert_eq!(d_mis, 800_000.0, "misalignment must not change the result");
    assert!(
        t_mis.as_nanos() > 2 * t_co.as_nanos(),
        "misaligned dot should pay server-to-server transfers: {t_co:?} vs {t_mis:?}"
    );
}

#[test]
fn compression_halves_pull_bytes() {
    let pull_bytes = |compress: bool| {
        let mut sim = SimBuilder::new().seed(4).build();
        let (servers, storage) = deploy_ps(&mut sim, 2, DISK);
        let out = sim.spawn_collect("coordinator", move |ctx| {
            let mut m = PsMaster::new(servers, storage, PsConfig { compress });
            let h = m.create_matrix(ctx, 100_000, 1, Partitioning::Column, InitKind::Zero);
            let _ = h.pull_row(ctx, 0);
        });
        let report = sim.run().unwrap();
        out.take();
        report.total_bytes
    };
    let raw = pull_bytes(false);
    let packed = pull_bytes(true);
    assert!(
        packed < raw * 6 / 10,
        "compression should cut bytes roughly in half: {raw} vs {packed}"
    );
}

#[test]
fn checkpoint_and_restore_recover_server_state() {
    let got = with_ps(3, 9, |ctx, m| {
        let h = dense(ctx, m, 90, 2);
        let vals: Vec<f64> = (0..90).map(|i| (i * i) as f64).collect();
        h.push_dense(ctx, 0, &vals);
        h.fill(ctx, 1, 7.0);
        m.checkpoint_all(ctx);
        // Writes after the checkpoint are lost on failure.
        h.push_sparse(ctx, 0, &[(0, 1000.0)]);
        // Kill one server, recover it from the checkpoint.
        let victim = h.route.resolve(1);
        ctx.kill(victim);
        ctx.advance(SimTime::from_millis(10));
        let slots = m.recover_dead_servers(ctx);
        let row0 = h.pull_row(ctx, 0);
        let row1 = h.pull_row(ctx, 1);
        (slots, row0, row1, m.recoveries())
    });
    assert_eq!(got.0, vec![1]);
    // Row contents equal the checkpointed values everywhere.
    let expect: Vec<f64> = (0..90).map(|i| (i * i) as f64).collect();
    // Column 0 lives on slot 0 which never failed, so the post-checkpoint
    // push survives there.
    assert_eq!(got.1[0], 1000.0);
    assert_eq!(&got.1[1..], &expect[1..]);
    assert_eq!(got.2, vec![7.0; 90]);
    assert_eq!(got.3, 1);
}

#[test]
fn checkpointed_recovery_reports_no_silent_reinit() {
    let got = with_ps(3, 9, |ctx, m| {
        let h = dense(ctx, m, 90, 1);
        h.fill(ctx, 0, 2.0);
        m.checkpoint_all(ctx);
        ctx.kill(h.route.resolve(1));
        ctx.advance(SimTime::from_millis(1));
        m.recover_dead_servers(ctx);
        (h.pull_row(ctx, 0), m.recoveries(), m.silent_reinits())
    });
    assert_eq!(got.0, vec![2.0; 90]);
    assert_eq!(got.1, 1);
    assert_eq!(got.2, 0, "a checkpointed restore is not a re-init");
}

#[test]
fn recovery_without_checkpoint_reinitializes() {
    let got = with_ps(2, 9, |ctx, m| {
        let h = dense(ctx, m, 20, 1);
        h.push_dense(ctx, 0, &[5.0; 20]);
        let victim = h.route.resolve(0);
        ctx.kill(victim);
        ctx.advance(SimTime::from_millis(1));
        m.recover_dead_servers(ctx);
        (h.pull_row(ctx, 0), m.recoveries(), m.silent_reinits())
    });
    // Slot 0's half is re-initialized to zero; slot 1's half survives.
    assert_eq!(&got.0[0..10], &[0.0; 10]);
    assert_eq!(&got.0[10..20], &[5.0; 10]);
    // The restore found nothing in storage: that must be *visible*, not a
    // silently discarded RestoreReq result.
    assert_eq!((got.1, got.2), (1, 1));
}

#[test]
fn client_request_to_a_dead_server_triggers_recovery_and_retries() {
    // Nobody calls recover_dead_servers explicitly: the pull itself times
    // out, runs fleet recovery through the handle, re-resolves the slot and
    // retries against the replacement.
    let got = with_ps(3, 9, |ctx, m| {
        let h = dense(ctx, m, 90, 1);
        let vals: Vec<f64> = (0..90).map(|i| i as f64).collect();
        h.push_dense(ctx, 0, &vals);
        m.checkpoint_all(ctx);
        ctx.kill(h.route.resolve(1));
        let before = ctx.now();
        let row = h.pull_row(ctx, 0);
        (row, vals, m.recoveries(), ctx.now() - before)
    });
    assert_eq!(got.0, got.1, "retried pull must return the full row");
    assert_eq!(got.2, 1, "the client itself must have recovered the server");
    assert!(
        got.3 >= SimTime::from_secs_f64(10.0),
        "recovery is reached through the attempt deadline, got {:?}",
        got.3
    );
}

#[test]
fn client_push_retry_after_server_loss_is_not_double_applied() {
    // A push whose target dies mid-operation is retried; the op-id dedup
    // plus checkpoint restore must leave each surviving delta applied
    // exactly once on the replacement.
    let got = with_ps(2, 9, |ctx, m| {
        let h = dense(ctx, m, 20, 1);
        h.fill(ctx, 0, 1.0);
        m.checkpoint_all(ctx);
        ctx.kill(h.route.resolve(1));
        // This push times out on slot 1, recovers the server (restoring the
        // all-ones checkpoint) and resends the slot-1 segment.
        h.push_dense(ctx, 0, &[1.0; 20]);
        (h.pull_row(ctx, 0), m.recoveries())
    });
    assert_eq!(got.0, vec![2.0; 20], "exactly one application per element");
    assert_eq!(got.1, 1);
}

#[test]
fn row_access_parallelism_beats_single_server() {
    // Many workers pulling a wide dense row concurrently: with S servers the
    // aggregate server-side NIC bandwidth is S×, so the makespan drops (the
    // paper's fix for the single-point problem). A single server serializes
    // all workers on its out-NIC.
    let time_pull = |servers: usize| {
        let workers = 8usize;
        let mut sim = SimBuilder::new().seed(2).build();
        let (srv, storage) = deploy_ps(&mut sim, servers, DISK);
        // Worker ProcIds are deterministic: servers, storage, coordinator,
        // then the workers in spawn order.
        let worker_ids: Vec<ps2_simnet::ProcId> = (0..workers)
            .map(|w| ps2_simnet::ProcId(servers + 2 + w))
            .collect();
        sim.spawn("coordinator", move |ctx| {
            let mut m = PsMaster::new(srv, storage, PsConfig::default());
            let h = m.create_matrix(ctx, 4_000_000, 1, Partitioning::Column, InitKind::Zero);
            for &w in &worker_ids {
                ctx.send(w, 7, h.clone(), 64);
            }
        });
        let mut slots = Vec::new();
        for i in 0..workers {
            let slot = sim.spawn_collect(&format!("worker-{i}"), move |ctx| {
                let env = ctx.recv();
                let h: MatrixHandle = env.downcast::<MatrixHandle>();
                let _ = h.pull_row(ctx, 0);
                ctx.now()
            });
            slots.push(slot);
        }
        sim.run().unwrap();
        slots.into_iter().map(|s| s.take()).max().unwrap()
    };
    let t1 = time_pull(1);
    let t8 = time_pull(8);
    assert!(
        t1.as_nanos() > 3 * t8.as_nanos(),
        "8 servers should be much faster for 8 concurrent pullers: {t1:?} vs {t8:?}"
    );
}

#[test]
fn free_matrix_releases_server_memory() {
    let got = with_ps(2, 1, |ctx, m| {
        let h = dense(ctx, m, 10, 1);
        m.free_matrix(ctx, &h);
        // Creating a new matrix reuses the id space without clashing.
        let h2 = dense(ctx, m, 10, 1);
        h2.pull_row(ctx, 0)
    });
    assert_eq!(got, vec![0.0; 10]);
}
